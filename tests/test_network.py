"""Tests for repro.decoder.network — the flat lexicon state bank."""

import numpy as np
import pytest

from repro.decoder.network import FlatLexiconNetwork
from repro.hmm.topology import HmmTopology
from repro.lexicon.dictionary import PronunciationDictionary
from repro.lexicon.triphone import SenoneTying


@pytest.fixture()
def dictionary():
    d = PronunciationDictionary()
    d.add("kaet", ("K", "AE", "T"))
    d.add("dig", ("D", "IH", "G"))
    d.add("a", ("AA",))
    return d


@pytest.fixture()
def tying():
    return SenoneTying(num_senones=6000)


class TestBuild:
    def test_state_counts(self, dictionary, tying):
        net = FlatLexiconNetwork.build(dictionary, tying)
        # words sorted: a (1 phone), dig (3), kaet (3) + silence word.
        assert net.num_words == 3
        assert net.has_silence
        assert net.num_states == (1 + 3 + 3) * 3 + 3

    def test_without_silence(self, dictionary, tying):
        net = FlatLexiconNetwork.build(dictionary, tying, include_silence=False)
        assert not net.has_silence
        assert net.num_states == 21

    def test_word_ranges_partition_states(self, dictionary, tying):
        net = FlatLexiconNetwork.build(dictionary, tying)
        covered = []
        total_words = net.num_words + 1
        for w in range(total_words):
            covered.extend(net.states_of_word(w).tolist())
        assert sorted(covered) == list(range(net.num_states))

    def test_is_start_marks_word_heads(self, dictionary, tying):
        net = FlatLexiconNetwork.build(dictionary, tying)
        starts = np.flatnonzero(net.is_start)
        assert set(starts.tolist()) == set(net.start_state.tolist())

    def test_word_of_state_consistent(self, dictionary, tying):
        net = FlatLexiconNetwork.build(dictionary, tying)
        for w in range(net.num_words):
            states = net.states_of_word(w)
            assert np.all(net.word_of_state[states] == w)

    def test_senones_within_budget(self, dictionary, tying):
        net = FlatLexiconNetwork.build(dictionary, tying)
        assert int(net.senone_id.max()) < tying.num_senones

    def test_word_names(self, dictionary, tying):
        net = FlatLexiconNetwork.build(dictionary, tying)
        assert net.word_name(0) == "a"
        assert net.word_name(net.silence_word) == "<sil>"

    def test_transition_constants(self, dictionary, tying):
        topo = HmmTopology(num_states=3, self_loop_prob=0.7)
        net = FlatLexiconNetwork.build(dictionary, tying, topo)
        assert np.allclose(net.self_logp, np.log(0.7), atol=1e-6)
        assert np.allclose(net.fwd_logp, np.log(0.3), atol=1e-6)

    def test_topology_mismatch_rejected(self, dictionary):
        tying5 = SenoneTying(num_senones=6000, states_per_hmm=5)
        topo3 = HmmTopology(num_states=3)
        with pytest.raises(ValueError):
            FlatLexiconNetwork.build(dictionary, tying5, topo3)

    def test_empty_dictionary_rejected(self, tying):
        with pytest.raises(ValueError):
            FlatLexiconNetwork.build(PronunciationDictionary(), tying)

    def test_five_state_topology(self, dictionary):
        tying5 = SenoneTying(num_senones=6000, states_per_hmm=5)
        topo5 = HmmTopology(num_states=5)
        net = FlatLexiconNetwork.build(dictionary, tying5, topo5)
        assert net.num_states == (1 + 3 + 3) * 5 + 5

    def test_shared_senones_across_words(self, tying):
        """Tying: the same triphone in two words shares senones."""
        d = PronunciationDictionary()
        d.add("kaet", ("K", "AE", "T"))
        d.add("kaets", ("K", "AE", "T", "S"))
        net = FlatLexiconNetwork.build(d, tying, include_silence=False)
        kaet = net.states_of_word(net.words.index("kaet"))
        kaets = net.states_of_word(net.words.index("kaets"))
        # First two triphones (SIL-K+AE, K-AE+T) are identical.
        assert np.array_equal(
            net.senone_id[kaet[:6]], net.senone_id[kaets[:6]]
        )
