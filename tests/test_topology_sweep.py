"""End-to-end 5-state decoding — the unit's multi-topology claim.

Section III-B: "The decoder is able to handle multiple state (3, 5, 7)
HMMs and therefore can handle different acoustic models."  The dense
Viterbi-unit tests cover all three sizes at the column level; here a
complete 5-state system (tying, training, network, decode) runs end to
end.
"""

import pytest

from repro.decoder.recognizer import Recognizer
from repro.eval.wer import corpus_wer
from repro.workloads.tasks import tiny_task


@pytest.fixture(scope="module")
def task5():
    return tiny_task(seed=7, states_per_hmm=5)


class TestFiveStateSystem:
    def test_pool_and_tying_shapes(self, task5):
        assert task5.tying.states_per_hmm == 5
        assert task5.pool.num_senones == 51 * 5
        assert task5.topology.num_states == 5

    def test_network_states(self, task5):
        rec = Recognizer.create(
            task5.dictionary, task5.pool, task5.lm, task5.tying,
            topology=task5.topology, mode="reference",
        )
        # 5 states per phone instance.
        phones = sum(
            len(task5.dictionary.pronunciation(w))
            for w in task5.dictionary.words()
        )
        assert rec.network.num_states == phones * 5 + 5  # + silence

    def test_decodes_test_set(self, task5):
        rec = Recognizer.create(
            task5.dictionary, task5.pool, task5.lm, task5.tying,
            topology=task5.topology, mode="reference",
        )
        refs, hyps = [], []
        for utt in task5.corpus.test:
            refs.append(utt.words)
            hyps.append(rec.decode(utt.features).words)
        assert corpus_wer(refs, hyps).wer < 0.15

    def test_hardware_mode_five_state(self, task5):
        rec = Recognizer.create(
            task5.dictionary, task5.pool, task5.lm, task5.tying,
            topology=task5.topology, mode="hardware",
        )
        utt = task5.corpus.test[0]
        result = rec.decode(utt.features)
        assert result.words == tuple(utt.words)
        assert result.viterbi_activity["transitions"] > 0
