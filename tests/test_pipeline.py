"""Tests for repro.core.pipeline."""

import pytest

from repro.core.pipeline import PipelineSpec, PipelineTrace


class TestPipelineSpec:
    def test_cycles_fully_pipelined(self):
        spec = PipelineSpec("p", depth=8, initiation_interval=1)
        assert spec.cycles(1) == 8
        assert spec.cycles(10) == 17

    def test_cycles_ii2(self):
        spec = PipelineSpec("p", depth=4, initiation_interval=2)
        assert spec.cycles(1) == 4
        assert spec.cycles(5) == 4 + 8

    def test_zero_items(self):
        assert PipelineSpec("p", depth=5).cycles(0) == 0

    def test_throughput_cycles(self):
        spec = PipelineSpec("p", depth=4, initiation_interval=2)
        assert spec.throughput_cycles(10) == 20

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            PipelineSpec("p", depth=0)
        with pytest.raises(ValueError):
            PipelineSpec("p", depth=1, initiation_interval=0)
        with pytest.raises(ValueError):
            PipelineSpec("p", depth=1).cycles(-1)


class TestTrace:
    def test_records_events(self):
        trace = PipelineTrace()
        trace.record("blk", "item0", 0, 10)
        trace.record("blk", "item1", 1, 11)
        assert len(trace.events) == 2
        assert trace.events[0].retire_cycle == 10

    def test_disabled_trace_ignores(self):
        trace = PipelineTrace(enabled=False)
        trace.record("blk", "x", 0, 1)
        assert not trace.events

    def test_rejects_retire_before_issue(self):
        with pytest.raises(ValueError):
            PipelineTrace().record("blk", "x", 5, 4)

    def test_format_and_clear(self):
        trace = PipelineTrace()
        trace.record("op-unit", "senone[3]", 0, 338)
        text = trace.format()
        assert "op-unit" in text and "senone[3]" in text
        trace.clear()
        assert not trace.events

    def test_format_limit(self):
        trace = PipelineTrace()
        for i in range(10):
            trace.record("b", f"i{i}", i, i + 1)
        assert len(trace.format(limit=3).splitlines()) == 4  # header + 3
