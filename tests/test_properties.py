"""Cross-module property tests (hypothesis) on system invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.logadd import LogAddTable
from repro.decoder.beam import LOG_ZERO, BeamConfig, apply_beam
from repro.hmm.train import forced_alignment, uniform_alignment
from repro.lm.ngram import NGramModel
from repro.lm.vocabulary import Vocabulary
from repro.quant.float_formats import FloatFormat
from repro.quant.packing import pack_bits, unpack_bits


@given(
    st.integers(min_value=1, max_value=23),
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32),
        min_size=1,
        max_size=64,
    ),
)
@settings(max_examples=100, deadline=None)
def test_property_flash_image_roundtrip(mantissa_bits, values):
    """encode -> pack -> unpack -> decode is lossless past quantize."""
    fmt = FloatFormat(mantissa_bits=mantissa_bits)
    arr = np.asarray(values, dtype=np.float32)
    patterns = fmt.encode(arr)
    blob = pack_bits(patterns, fmt.total_bits)
    recovered = fmt.decode(unpack_bits(blob, fmt.total_bits, arr.size))
    assert np.array_equal(recovered, fmt.quantize(arr))


@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=80, deadline=None)
def test_property_forced_alignment_valid(num_states, seed):
    """Any alignment is monotone, total, and hits both endpoints."""
    rng = np.random.default_rng(seed)
    num_frames = num_states + int(rng.integers(0, 30))
    scores = rng.normal(-5, 3, size=(num_frames, num_states))
    alignment = forced_alignment(scores, np.log(0.6), np.log(0.4))
    assert alignment.shape == (num_frames,)
    assert alignment[0] == 0
    assert alignment[-1] == num_states - 1
    assert np.all(np.isin(np.diff(alignment), [0, 1]))


@given(
    st.integers(min_value=1, max_value=200),
    st.integers(min_value=1, max_value=50),
)
@settings(max_examples=80, deadline=None)
def test_property_uniform_alignment_covers_prefix(num_frames, num_states):
    assignment = uniform_alignment(num_frames, num_states)
    assert assignment[0] == 0
    assert np.all(np.diff(assignment) >= 0)
    assert assignment.max() < num_states


@given(
    st.lists(
        st.floats(min_value=-1000, max_value=0, allow_nan=False),
        min_size=1,
        max_size=80,
    ),
    st.floats(min_value=1.0, max_value=300.0),
)
@settings(max_examples=100, deadline=None)
def test_property_beam_keeps_exactly_the_beam(deltas, beam):
    """Post-prune: survivors are exactly those within the beam."""
    arr = np.asarray(deltas, dtype=np.float64)
    best = arr.max()
    expected = arr > best - beam
    alive, count = apply_beam(arr, BeamConfig(state_beam=beam))
    assert count == int(expected.sum())
    assert np.array_equal(alive, expected)
    assert np.all(arr[~alive] == LOG_ZERO)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_property_lm_rows_are_subdistributions(seed):
    """Every LM row (over regular words) has mass <= 1, and the full
    ID space sums to exactly 1."""
    rng = np.random.default_rng(seed)
    words = [f"w{i}" for i in range(int(rng.integers(2, 12)))]
    vocab = Vocabulary(words)
    sentences = [
        [words[int(rng.integers(len(words)))] for _ in range(int(rng.integers(1, 6)))]
        for _ in range(int(rng.integers(1, 10)))
    ]
    lm = NGramModel(vocab, order=2)
    lm.train(sentences)
    for history in [(), (0,), (vocab.bos_id,)]:
        row_mass = float(np.exp(lm.log_prob_row(history)).sum())
        assert row_mass <= 1.0 + 1e-9
        full = sum(lm.prob(w, history) for w in range(len(vocab)))
        assert full == pytest.approx(1.0, abs=1e-9)


@given(
    st.lists(
        st.floats(min_value=-60, max_value=-0.5, allow_nan=False),
        min_size=2,
        max_size=16,
    )
)
@settings(max_examples=100, deadline=None)
def test_property_logadd_fold_order_insensitive_within_bound(values):
    """Folding in any order stays within the accumulated table bound."""
    table = LogAddTable()
    forward = table.logadd_many(np.asarray(values))
    backward = table.logadd_many(np.asarray(values[::-1]))
    bound = 2 * len(values) * table.theoretical_error_bound()
    assert abs(forward - backward) <= bound
