"""Tests for repro.eval.realtime and repro.eval.report."""

import pytest

from repro.eval.realtime import analyze_unit_cycles, frame_cycle_budget
from repro.eval.report import check_within, format_comparison, format_table


class TestRealtime:
    def test_paper_budget(self):
        """50 MHz x 10 ms = 500,000 cycles per frame."""
        assert frame_cycle_budget(50e6, 0.010) == 500_000

    def test_report_math(self):
        report = analyze_unit_cycles([100_000, 300_000], 50e6, 0.010)
        assert report.mean_cycles_per_frame == 200_000
        assert report.peak_cycles_per_frame == 300_000
        assert report.mean_utilization == pytest.approx(0.4)
        assert report.peak_utilization == pytest.approx(0.6)
        assert report.is_real_time

    def test_not_real_time(self):
        report = analyze_unit_cycles([600_000, 700_000], 50e6, 0.010)
        assert not report.is_real_time
        assert report.real_time_factor > 1.0

    def test_format(self):
        report = analyze_unit_cycles([250_000], 50e6, 0.010)
        assert "REAL-TIME" in report.format()

    def test_validation(self):
        with pytest.raises(ValueError):
            analyze_unit_cycles([])
        with pytest.raises(ValueError):
            analyze_unit_cycles([-1])
        with pytest.raises(ValueError):
            frame_cycle_budget(0, 0.01)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["alpha", 1.5], ["b", 22.123456]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "alpha" in lines[3]  # title, header, rule, first row
        assert "22.12" in text  # 4 significant digits

    def test_format_table_validates_width(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])
        with pytest.raises(ValueError):
            format_table([], [])

    def test_empty_rows_ok(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_format_comparison(self):
        line = format_comparison("memory", 15.16, 15.168, unit="MB")
        assert "paper" in line and "measured" in line and "+0.1" in line

    def test_format_comparison_zero_paper(self):
        line = format_comparison("x", 0.0, 0.0)
        assert "0" in line

    def test_check_within(self):
        assert check_within(1.05, 1.0, 0.10)
        assert not check_within(1.25, 1.0, 0.10)
        assert check_within(0.0, 0.0, 0.01)
        with pytest.raises(ValueError):
            check_within(1.0, 1.0, -0.1)
