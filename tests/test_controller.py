"""Tests for repro.core.controller — mode sequencing and gating."""

import pytest

from repro.core.controller import ModeController, UnitMode


class TestSequencing:
    def test_boot_sequence(self):
        ctl = ModeController()
        ctl.enter(UnitMode.LOAD_TABLE, cycles=256)
        ctl.enter(UnitMode.LOAD_FEATURE, cycles=39)
        ctl.enter(UnitMode.GAUSSIAN, cycles=312)
        ctl.enter(UnitMode.LOGADD, cycles=14)
        ctl.enter(UnitMode.VITERBI, cycles=100)
        assert ctl.mode is UnitMode.VITERBI

    def test_gaussian_requires_feature(self):
        ctl = ModeController(table_loaded=True)
        with pytest.raises(RuntimeError):
            # IDLE -> GAUSSIAN is not even a legal edge.
            ctl.enter(UnitMode.GAUSSIAN)

    def test_scoring_requires_table(self):
        ctl = ModeController()
        ctl.enter(UnitMode.LOAD_FEATURE)
        with pytest.raises(RuntimeError):
            ctl.enter(UnitMode.GAUSSIAN)

    def test_idle_clears_feature(self):
        ctl = ModeController(table_loaded=True)
        ctl.enter(UnitMode.LOAD_FEATURE)
        ctl.enter(UnitMode.IDLE)
        ctl.enter(UnitMode.LOAD_FEATURE)
        ctl.enter(UnitMode.GAUSSIAN)  # legal again

    def test_illegal_transition(self):
        ctl = ModeController()
        with pytest.raises(RuntimeError):
            ctl.enter(UnitMode.VITERBI)

    def test_rejects_negative_cycles(self):
        ctl = ModeController()
        with pytest.raises(ValueError):
            ctl.enter(UnitMode.LOAD_TABLE, cycles=-1)


class TestGating:
    def test_idle_gates_everything(self):
        ctl = ModeController()
        assert not ctl.active_blocks()
        assert "datapath" in ctl.gated_blocks()

    def test_gaussian_mode_blocks(self):
        ctl = ModeController(table_loaded=True)
        ctl.enter(UnitMode.LOAD_FEATURE)
        ctl.enter(UnitMode.GAUSSIAN)
        active = ctl.active_blocks()
        assert "datapath" in active and "buffers" in active
        assert "viterbi" in ctl.gated_blocks()

    def test_active_and_gated_partition(self):
        ctl = ModeController(table_loaded=True)
        ctl.enter(UnitMode.LOAD_FEATURE)
        for mode in (UnitMode.GAUSSIAN, UnitMode.LOGADD, UnitMode.VITERBI):
            ctl.enter(mode)
            assert not (ctl.active_blocks() & ctl.gated_blocks())

    def test_duty_cycle(self):
        ctl = ModeController(table_loaded=True)
        ctl.enter(UnitMode.LOAD_FEATURE, cycles=40)
        ctl.enter(UnitMode.GAUSSIAN, cycles=360)
        duty = ctl.duty_cycle()
        assert duty["gaussian"] == pytest.approx(0.9)
        assert duty["load-feature"] == pytest.approx(0.1)

    def test_duty_cycle_empty(self):
        assert all(v == 0.0 for v in ModeController().duty_cycle().values())
