"""Tests for repro.core.power — calibration, gating, breakdowns."""

import pytest

from repro.core.power import AreaTable, EnergyTable, PowerModel, PowerReport


def _full_busy_activity(duration_s: float = 1.0, clock_hz: float = 50e6):
    """Activity of a unit streaming Gaussians for the whole interval."""
    cycles = duration_s * clock_hz
    dims_per_senone = 8 * 39
    cycles_per_senone = 338.0  # OpUnitSpec default for M=8, L=39
    senones = cycles / cycles_per_senone
    return {
        "cycles_busy": cycles,
        "sdm_ops": senones * dims_per_senone,
        "add_ops": senones * dims_per_senone,
        "fma_ops": senones * 8,
        "compare_ops": senones,
        "sram_reads": senones * 7,
        "parameter_bytes": senones * 2528.0,
        "senones": senones,
    }


class TestCalibration:
    def test_fully_busy_unit_near_200mw(self):
        """The paper's synthesis point: 200 mW at 50 MHz (R4)."""
        model = PowerModel()
        report = model.unit_report(_full_busy_activity(), 1.0)
        assert report.average_power_w == pytest.approx(0.200, rel=0.10)

    def test_area_totals_2p2mm2(self):
        assert AreaTable().total() == pytest.approx(2.2, abs=0.01)

    def test_area_breakdown_sums(self):
        area = AreaTable()
        assert sum(area.breakdown().values()) == pytest.approx(area.total())


class TestClockGating:
    def test_idle_unit_gated_vs_ungated(self):
        """Clock gating must slash idle power (the paper's mechanism)."""
        idle = {"cycles_busy": 0.0}
        gated = PowerModel(clock_gating=True).unit_report(idle, 1.0)
        ungated = PowerModel(clock_gating=False).unit_report(idle, 1.0)
        assert gated.average_power_w < 0.5 * ungated.average_power_w

    def test_gating_irrelevant_when_fully_busy(self):
        act = _full_busy_activity()
        gated = PowerModel(clock_gating=True).unit_report(act, 1.0)
        ungated = PowerModel(clock_gating=False).unit_report(act, 1.0)
        assert gated.energy_j == pytest.approx(ungated.energy_j)

    def test_low_duty_cycle_power_scales(self):
        """At 10% duty the gated unit burns far less than 200 mW."""
        act = _full_busy_activity()
        tenth = {k: v * 0.1 for k, v in act.items()}
        report = PowerModel(clock_gating=True).unit_report(tenth, 1.0)
        assert report.average_power_w < 0.05


class TestReports:
    def test_breakdown_sums_to_total(self):
        report = PowerModel().unit_report(_full_busy_activity(), 1.0)
        assert sum(report.breakdown_j.values()) == pytest.approx(report.energy_j)

    def test_leakage_always_present(self):
        report = PowerModel().unit_report({"cycles_busy": 0.0}, 2.0)
        assert report.breakdown_j["leakage"] == pytest.approx(
            EnergyTable().leakage_w * 2.0
        )

    def test_combined_report_adds(self):
        model = PowerModel()
        act = _full_busy_activity()
        single = model.unit_report(act, 1.0)
        combined = model.combined_report([act, act], 1.0)
        assert combined.energy_j == pytest.approx(2 * single.energy_j)

    def test_zero_duration(self):
        report = PowerReport(duration_s=0.0, energy_j=0.0)
        assert report.average_power_w == 0.0

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            PowerModel().unit_report({}, -1.0)

    def test_rejects_bad_clock(self):
        with pytest.raises(ValueError):
            PowerModel(clock_hz=0)

    def test_format_contains_breakdown(self):
        report = PowerModel().unit_report(_full_busy_activity(), 0.5)
        text = report.format()
        assert "datapath" in text and "mW" in text

    def test_missing_keys_default_to_zero(self):
        report = PowerModel().unit_report({"cycles_busy": 1000.0}, 0.001)
        assert report.energy_j > 0

    def test_two_structures_near_400mw(self):
        """Section VI: 'the power is about 400mW (2X200mW)'."""
        model = PowerModel()
        combined = model.combined_report(
            [_full_busy_activity(), _full_busy_activity()], 1.0
        )
        assert combined.average_power_w == pytest.approx(0.400, rel=0.10)
