"""Tests for repro.decoder.scorer — reference and hardware backends."""

import numpy as np
import pytest

from repro.core.opunit import OpUnit, OpUnitSpec
from repro.decoder.scorer import (
    LOG_ZERO,
    HardwareScorer,
    ReferenceScorer,
    ScoringStats,
)


class TestScoringStats:
    def test_fractions(self):
        stats = ScoringStats(senone_budget=100)
        stats.record(20)
        stats.record(40)
        assert stats.mean_active == 30.0
        assert stats.mean_active_fraction == pytest.approx(0.30)
        assert stats.peak_active_fraction == pytest.approx(0.40)

    def test_empty(self):
        stats = ScoringStats(senone_budget=100)
        assert stats.mean_active == 0.0
        assert stats.mean_active_fraction == 0.0
        assert stats.peak_active_fraction == 0.0


class TestReferenceScorer:
    def test_scores_requested_only(self, small_pool, rng):
        scorer = ReferenceScorer(small_pool)
        obs = rng.normal(size=small_pool.dim)
        out = scorer.score(0, obs, np.array([1, 4]))
        assert out[1] > LOG_ZERO / 2 and out[4] > LOG_ZERO / 2
        assert out[0] == LOG_ZERO

    def test_matches_pool(self, small_pool, rng):
        scorer = ReferenceScorer(small_pool)
        obs = rng.normal(size=small_pool.dim)
        out = scorer.score(0, obs, np.arange(small_pool.num_senones))
        assert np.allclose(out, small_pool.score_frame(obs))

    def test_stats_and_reset(self, small_pool, rng):
        scorer = ReferenceScorer(small_pool)
        scorer.score(0, rng.normal(size=small_pool.dim), np.array([0, 1, 2]))
        assert scorer.stats.frames == 1
        assert scorer.stats.senones_requested == 3
        scorer.reset()
        assert scorer.stats.frames == 0

    def test_empty_request(self, small_pool, rng):
        scorer = ReferenceScorer(small_pool)
        out = scorer.score(0, rng.normal(size=small_pool.dim), np.array([], dtype=np.int64))
        assert np.all(out == LOG_ZERO)


class TestHardwareScorer:
    def _scorer(self, small_pool, n_units=2):
        units = [OpUnit(OpUnitSpec(feature_dim=small_pool.dim)) for _ in range(n_units)]
        return HardwareScorer(units, small_pool.gaussian_table()), units

    def test_close_to_reference(self, small_pool, rng):
        scorer, _ = self._scorer(small_pool)
        obs = rng.normal(size=small_pool.dim)
        senones = np.arange(small_pool.num_senones)
        hw = scorer.score(0, obs, senones)
        ref = small_pool.score_frame(obs)
        assert np.max(np.abs(hw - ref)) < 5e-3

    def test_work_split_across_units(self, small_pool, rng):
        scorer, units = self._scorer(small_pool, n_units=2)
        scorer.score(0, rng.normal(size=small_pool.dim), np.arange(24))
        assert units[0].senones_scored == 12
        assert units[1].senones_scored == 12

    def test_critical_path_recorded(self, small_pool, rng):
        scorer, units = self._scorer(small_pool)
        scorer.score(0, rng.normal(size=small_pool.dim), np.arange(10))
        assert len(scorer.frame_critical_cycles) == 1
        per = units[0].spec.cycles_per_senone(small_pool.num_components)
        assert scorer.frame_critical_cycles[0] == 5 * per

    def test_empty_frame(self, small_pool, rng):
        scorer, _ = self._scorer(small_pool)
        scorer.score(0, rng.normal(size=small_pool.dim), np.array([], dtype=np.int64))
        assert scorer.frame_critical_cycles == [0]

    def test_reset_clears_units(self, small_pool, rng):
        scorer, units = self._scorer(small_pool)
        scorer.score(0, rng.normal(size=small_pool.dim), np.arange(24))
        scorer.reset()
        assert units[0].cycles_busy == 0
        assert scorer.frame_critical_cycles == []

    def test_requires_units(self, small_pool):
        with pytest.raises(ValueError):
            HardwareScorer([], small_pool.gaussian_table())

    def test_dim_mismatch_rejected(self, small_pool):
        units = [OpUnit(OpUnitSpec(feature_dim=small_pool.dim + 1))]
        with pytest.raises(ValueError):
            HardwareScorer(units, small_pool.gaussian_table())
