"""Shared fixtures: expensive artifacts are built once per session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hmm.senone import SenonePool
from repro.workloads.tasks import TrainedTask, tiny_task


@pytest.fixture(scope="session")
def task() -> TrainedTask:
    """The 20-word trained tiny task (built once; ~3 s)."""
    return tiny_task(seed=7)


@pytest.fixture(scope="session")
def small_pool() -> SenonePool:
    """A random 24-senone pool for unit-level scoring tests."""
    return SenonePool.random(24, num_components=4, dim=13, rng=np.random.default_rng(3))


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
