"""`repro.obs` units: histograms, traces, telemetry, flight recorder.

Covers, per the PR's acceptance criteria:

* :class:`LogHistogram` — O(1) memory under sustained recording (the
  regression test for the unbounded-deque metrics bug), NaN on empty,
  bounded-relative-error percentiles, exact bucket-wise merge, sparse
  dict round trip;
* :class:`Trace` / :class:`Span` — minting uniqueness (including
  thread safety), well-nested span trees under an injectable clock,
  merge-by-trace-id semantics, dict round trip, tree rendering;
* :class:`DecodeTelemetry` — additive merge is field-exact, derived
  fractions, dict round trip ignoring unknown keys;
* :class:`FlightRecorder` — bounded rings, per-shard merge order,
  bounded incident retention;
* exposition — counters/gauges/histogram families render, NaN
  percentiles render as the literal ``NaN``.
"""

import json
import math
import sys
import threading

import pytest

from repro.obs import (
    DecodeTelemetry,
    FlightRecorder,
    LogHistogram,
    Trace,
    mint_trace_id,
)
from repro.obs.exposition import render_metrics_text
from repro.obs.flight import SERVER_SHARD


# ----------------------------------------------------------------------
# LogHistogram
# ----------------------------------------------------------------------
class TestLogHistogram:
    def test_empty_percentile_is_nan_not_zero(self):
        hist = LogHistogram()
        assert math.isnan(hist.percentile(0.5))
        assert math.isnan(hist.percentile(0.95))
        assert hist.count == 0

    def test_percentile_relative_error_is_bucket_bounded(self):
        hist = LogHistogram()
        values = [0.001 * 1.11**i for i in range(80)]  # spans decades
        for v in values:
            hist.record(v)
        ratio = 10 ** (1 / hist.per_decade)
        for q in (0.1, 0.5, 0.9, 0.99):
            exact = sorted(values)[min(len(values) - 1, int(q * len(values)))]
            approx = hist.percentile(q)
            # Within two bucket widths of the exact sample quantile
            # (one for the bucket, one for rank-rounding at the edge).
            assert exact / ratio**2 <= approx <= exact * ratio**2

    def test_out_of_range_values_clamp_to_bounds(self):
        hist = LogHistogram(lo=1e-3, hi=1.0)
        for v in (0.0, -5.0, 1e-9):
            hist.record(v)
        assert hist.percentile(0.5) == hist.lo
        hist2 = LogHistogram(lo=1e-3, hi=1.0)
        hist2.record(50.0)
        assert hist2.percentile(0.5) == hist2.hi

    def test_memory_is_constant_over_10k_completions(self):
        """THE regression test for the unbounded metrics-series bug:
        the latency accumulator must not grow with traffic."""
        hist = LogHistogram()
        baseline = sys.getsizeof(hist.counts) + len(hist.counts)
        for i in range(10_000):
            hist.record(0.0001 * (1 + i % 997))
        assert hist.count == 10_000
        assert sys.getsizeof(hist.counts) + len(hist.counts) == baseline
        # And the structure holds no per-sample storage at all.
        assert len(hist.counts) == hist.num_buckets + 2

    def test_merge_is_exact_and_config_checked(self):
        a, b = LogHistogram(), LogHistogram()
        for i in range(50):
            a.record(0.01 * (1 + i))
            b.record(0.5 + 0.01 * i)
        combined = a.merged(b)
        assert combined.count == a.count + b.count
        assert combined.sum == pytest.approx(a.sum + b.sum)
        for i, n in enumerate(combined.counts):
            assert n == a.counts[i] + b.counts[i]
        with pytest.raises(ValueError, match="different bucket configs"):
            a.merge(LogHistogram(per_decade=10))

    def test_dict_round_trip_is_sparse_and_json_safe(self):
        hist = LogHistogram()
        for v in (0.002, 0.002, 0.4, 7.0):
            hist.record(v)
        data = json.loads(json.dumps(hist.to_dict()))
        assert len(data["buckets"]) == 3  # only occupied buckets ship
        back = LogHistogram.from_dict(data)
        assert back.counts == hist.counts
        assert back.percentile(0.5) == hist.percentile(0.5)


# ----------------------------------------------------------------------
# Traces
# ----------------------------------------------------------------------
class TestTrace:
    def test_minted_ids_are_unique_across_threads(self):
        ids = []
        lock = threading.Lock()

        def mint_many():
            local = [mint_trace_id() for _ in range(200)]
            with lock:
                ids.extend(local)

        threads = [threading.Thread(target=mint_many) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(ids)) == len(ids)

    def test_spans_are_well_nested_under_injected_clock(self):
        """Children lie inside their parents and siblings advance
        monotonically — the structural invariant the serving stack
        promises for every merged trace."""
        trace = Trace(trace_id="t-1", utt_id=3)
        trace.add("request", 0.0, 10.0)
        trace.add("queue.wait", 1.0, 3.0, parent="request")
        trace.add("decode", 3.0, 9.0, parent="request", worker=1)
        trace.add("decode.scoring", 3.0, 7.0, parent="decode", worker=1)
        trace.add("decode.token_update", 7.0, 9.0, parent="decode", worker=1)
        by_name = {s.name: s for s in trace.spans}
        for span in trace.spans:
            assert span.end_s >= span.start_s
            if span.parent is not None:
                parent = by_name[span.parent]
                assert parent.start_s <= span.start_s
                assert span.end_s <= parent.end_s
        siblings = [s for s in trace.spans if s.parent == "decode"]
        starts = [s.start_s for s in siblings]
        assert starts == sorted(starts)
        assert trace.duration_s == 10.0

    def test_merge_requires_matching_trace_id(self):
        ours = Trace(trace_id="t-1")
        ours.add("request", 0.0, 2.0)
        theirs = Trace(trace_id="t-1")
        theirs.add("decode", 0.5, 1.5, worker=0)
        ours.merge(theirs)
        assert {s.name for s in ours.spans} == {"request", "decode"}
        with pytest.raises(ValueError, match="cannot merge"):
            ours.merge(Trace(trace_id="t-2"))

    def test_dict_round_trip(self):
        trace = Trace(trace_id="t-9", utt_id=4)
        trace.add("request", 1.0, 2.0)
        trace.add("decode", 1.2, 1.9, parent="request", worker=2)
        back = Trace.from_dict(json.loads(json.dumps(trace.to_dict())))
        assert back.trace_id == "t-9" and back.utt_id == 4
        assert [s.to_dict() for s in back.spans] == [
            s.to_dict() for s in trace.spans
        ]

    def test_render_draws_the_tree(self):
        trace = Trace(trace_id="t-7", utt_id=0)
        trace.add("request", 0.0, 0.010)
        trace.add("decode", 0.002, 0.009, parent="request", worker=1)
        trace.add("decode.scoring", 0.002, 0.007, parent="decode", worker=1)
        text = trace.render()
        lines = text.splitlines()
        assert "trace t-7" in lines[0]
        assert any("decode" in l and "[worker 1]" in l for l in lines)
        # The child is indented beneath its parent.
        decode_at = next(i for i, l in enumerate(lines) if "─ decode " in l)
        child_at = next(i for i, l in enumerate(lines) if "decode.scoring" in l)
        assert child_at > decode_at
        assert lines[child_at].index("decode.scoring") > lines[
            decode_at
        ].index("decode")

    def test_dangling_parent_promotes_child_to_root(self):
        trace = Trace(trace_id="t-8")
        trace.add("decode", 0.0, 1.0, parent="request")  # never merged
        assert "decode" in trace.render()


# ----------------------------------------------------------------------
# DecodeTelemetry
# ----------------------------------------------------------------------
class TestDecodeTelemetry:
    def test_merge_sums_every_field(self):
        a = DecodeTelemetry(frames=10, active_states=100, senones_scored=40)
        b = DecodeTelemetry(
            frames=5, active_states=20, stage_scoring_s=0.25, word_exits=3
        )
        a.merge(b).merge(None)
        assert a.frames == 15
        assert a.active_states == 120
        assert a.senones_scored == 40
        assert a.word_exits == 3
        assert a.stage_scoring_s == 0.25
        assert a.mean_active_states == pytest.approx(8.0)

    def test_fractions_guard_empty(self):
        tel = DecodeTelemetry()
        assert tel.mean_active_states == 0.0
        assert tel.fast_gaussian_fraction == 0.0
        assert tel.fast_dim_fraction == 0.0

    def test_dict_round_trip_ignores_unknown_keys(self):
        tel = DecodeTelemetry(frames=7, blas_dense_steps=5)
        data = tel.to_dict()
        data["从未见过"] = 1  # forward-compat: wire peers may be newer
        back = DecodeTelemetry.from_dict(data)
        assert back == tel


# ----------------------------------------------------------------------
# FlightRecorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def make(self, **kw):
        ticks = iter(range(100000))
        return FlightRecorder(clock=lambda: float(next(ticks)), **kw)

    def test_rings_are_bounded(self):
        rec = self.make(shards=2, capacity=8)
        for i in range(100):
            rec.record("dispatch", shard=i % 2, utt=i)
        assert len(rec.events(0)) == 8
        assert len(rec.events(1)) == 8
        # Oldest events were evicted, newest retained.
        assert rec.events(1)[-1]["utt"] == 99

    def test_incident_merges_shard_and_front_door(self):
        rec = self.make(shards=2)
        rec.record("submit", utt=1)
        rec.record("dispatch", shard=0, utt=1)
        rec.record("dispatch", shard=1, utt=2)
        dump = rec.incident("timeout", shard=0, detail="utt 1")
        kinds = [(e["kind"], e["shard"]) for e in dump.events]
        assert ("submit", SERVER_SHARD) in kinds
        assert ("dispatch", 0) in kinds
        assert ("dispatch", 1) not in kinds  # other shard's ring excluded
        ats = [e["at"] for e in dump.events]
        assert ats == sorted(ats)
        text = dump.render()
        assert "incident: timeout shard=0" in text
        assert "utt 1" in text

    def test_incident_log_is_bounded(self):
        rec = self.make(shards=1, max_incidents=4)
        for i in range(10):
            rec.incident(f"fault-{i}")
        kept = rec.incidents()
        assert len(kept) == 4
        assert kept[-1].reason == "fault-9"

    def test_unknown_shard_falls_back_to_front_door(self):
        rec = self.make(shards=1)
        rec.record("resolve", shard=99, utt=1)
        assert any(e["kind"] == "resolve" for e in rec.events(SERVER_SHARD))


# ----------------------------------------------------------------------
# Exposition
# ----------------------------------------------------------------------
class _FakeWorker:
    def __init__(self, worker):
        self.worker = worker
        self.alive = True
        self.in_flight = 2
        self.frames_processed = 100
        self.telemetry = DecodeTelemetry(frames=10, senones_scored=50)


class _FakeMetrics:
    submitted = 5
    completed = 4
    timeouts = 1
    cancelled = 0
    errors = 0
    rejections = 2
    steals = 0
    retries = 0
    reconnects = 0
    faults_injected = 0
    brownout_transitions = 0
    queue_depth = 3
    in_flight = 2
    worker_backlog = 4
    audio_seconds = 1.5
    rtf = 0.2
    brownout_active = False
    model_table_bytes = 1024
    workers = [_FakeWorker(0), _FakeWorker(1)]


class TestExposition:
    def test_renders_counters_gauges_histograms_and_telemetry(self):
        hist = LogHistogram()
        for v in (0.01, 0.02, 0.04):
            hist.record(v)
        text = render_metrics_text(
            _FakeMetrics(), {"latency": hist, "wait": LogHistogram()}
        )
        assert "# TYPE repro_serve_completed_total counter" in text
        assert "repro_serve_completed_total 4" in text
        assert "repro_serve_queue_depth 3" in text
        assert "# TYPE repro_serve_latency_seconds histogram" in text
        assert 'repro_serve_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_serve_latency_seconds_count 3" in text
        # An empty series' quantile gauges are the literal NaN.
        assert 'repro_serve_wait_seconds{quantile="0.95"} NaN' in text
        assert (
            'repro_serve_decode_telemetry_total{worker="1",field="senones_scored"} 50'
            in text
        )
        # Exposition documents end with a newline.
        assert text.endswith("\n")

    def test_cumulative_buckets_are_monotonic(self):
        hist = LogHistogram()
        for i in range(200):
            hist.record(0.001 * (1 + i))
        text = render_metrics_text(_FakeMetrics(), {"latency": hist})
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_serve_latency_seconds_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 200
