"""Tests for repro.quant.float_formats."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.quant.float_formats import (
    IEEE_SINGLE,
    MANTISSA_12,
    MANTISSA_15,
    PAPER_FORMATS,
    FloatFormat,
)


class TestConstruction:
    def test_paper_formats_bits(self):
        assert IEEE_SINGLE.total_bits == 32
        assert MANTISSA_15.total_bits == 24
        assert MANTISSA_12.total_bits == 21

    def test_paper_formats_tuple_order(self):
        assert [f.mantissa_bits for f in PAPER_FORMATS] == [23, 15, 12]

    def test_rejects_zero_mantissa(self):
        with pytest.raises(ValueError):
            FloatFormat(mantissa_bits=0)

    def test_rejects_wide_mantissa(self):
        with pytest.raises(ValueError):
            FloatFormat(mantissa_bits=24)

    def test_rejects_nonstandard_exponent(self):
        with pytest.raises(ValueError):
            FloatFormat(mantissa_bits=12, exponent_bits=5)

    def test_default_name(self):
        assert FloatFormat(mantissa_bits=10).name == "m10"


class TestQuantize:
    def test_identity_for_ieee_single(self):
        x = np.array([1.5, -2.25, 3.14159], dtype=np.float32)
        assert np.array_equal(IEEE_SINGLE.quantize(x), x)

    def test_low_mantissa_bits_cleared(self):
        x = np.random.default_rng(0).normal(size=500).astype(np.float32)
        q = MANTISSA_12.quantize(x)
        bits = q.view(np.uint32)
        assert not np.any(bits & np.uint32((1 << 11) - 1))

    def test_exact_values_preserved(self):
        # 1.5 = 1.1b needs only 1 mantissa bit.
        for fmt in PAPER_FORMATS:
            assert fmt.quantize(1.5) == np.float32(1.5)
            assert fmt.quantize(-0.25) == np.float32(-0.25)

    def test_round_to_nearest(self):
        # 1 + 2^-13 rounds to 1.0 at 12 mantissa bits (tie -> even).
        value = np.float32(1.0) + np.float32(2.0**-13)
        assert MANTISSA_12.quantize(value) == np.float32(1.0)

    def test_round_up_above_half(self):
        value = np.float32(1.0 + 2.0**-12 * 0.75)
        assert MANTISSA_12.quantize(value) == np.float32(1.0 + 2.0**-12)

    def test_relative_error_bound(self):
        rng = np.random.default_rng(1)
        x = rng.normal(scale=100.0, size=5000).astype(np.float32)
        x = x[x != 0]
        for fmt in (MANTISSA_15, MANTISSA_12):
            q = fmt.quantize(x)
            rel = np.abs((q.astype(np.float64) - x) / x)
            assert rel.max() <= fmt.relative_error_bound() * (1 + 1e-7)

    def test_idempotent(self):
        x = np.random.default_rng(2).normal(size=1000).astype(np.float32)
        q1 = MANTISSA_12.quantize(x)
        q2 = MANTISSA_12.quantize(q1)
        assert np.array_equal(q1, q2)

    def test_nan_inf_passthrough(self):
        x = np.array([np.nan, np.inf, -np.inf], dtype=np.float32)
        q = MANTISSA_12.quantize(x)
        assert np.isnan(q[0]) and np.isposinf(q[1]) and np.isneginf(q[2])

    def test_zero_preserved(self):
        assert MANTISSA_12.quantize(0.0) == 0.0

    def test_sign_preserved(self):
        x = np.array([-1.000244140625], dtype=np.float32)
        assert MANTISSA_12.quantize(x)[0] < 0

    def test_scalar_input(self):
        q = MANTISSA_15.quantize(3.14159)
        assert q.shape == ()

    def test_shape_preserved(self):
        x = np.zeros((3, 4, 5), dtype=np.float32)
        assert MANTISSA_12.quantize(x).shape == (3, 4, 5)


class TestEncodeDecode:
    @pytest.mark.parametrize("fmt", PAPER_FORMATS, ids=lambda f: f.name)
    def test_roundtrip_equals_quantize(self, fmt):
        x = np.random.default_rng(5).normal(scale=10, size=2000).astype(np.float32)
        assert np.array_equal(fmt.decode(fmt.encode(x)), fmt.quantize(x))

    def test_encode_width(self):
        x = np.random.default_rng(6).normal(size=100).astype(np.float32)
        patterns = MANTISSA_12.encode(x)
        assert int(patterns.max()) < (1 << 21)

    def test_negative_sign_bit(self):
        pattern = MANTISSA_12.encode(np.float32(-1.0))
        assert (int(pattern) >> 20) & 1 == 1

    def test_storage_bytes(self):
        assert IEEE_SINGLE.storage_bytes(1000) == 4000
        assert MANTISSA_15.storage_bytes(1000) == 3000
        assert MANTISSA_12.storage_bytes(8) == 21.0

    def test_storage_bytes_rejects_negative(self):
        with pytest.raises(ValueError):
            IEEE_SINGLE.storage_bytes(-1)

    def test_quantization_step(self):
        assert MANTISSA_12.quantization_step(1.0) == 2.0**-12
        assert MANTISSA_12.quantization_step(0.0) == 0.0


class TestPaperArithmetic:
    """The Section IV-B table identities."""

    def test_acoustic_model_sizes(self):
        values = 6000 * 8 * (39 + 39 + 1)
        assert IEEE_SINGLE.storage_bytes(values) / 1e6 == pytest.approx(15.168)
        assert MANTISSA_15.storage_bytes(values) / 1e6 == pytest.approx(11.376)
        assert MANTISSA_12.storage_bytes(values) / 1e6 == pytest.approx(9.954)

    def test_bandwidth_scaling(self):
        values = 6000 * 8 * (39 + 39 + 1)
        for fmt, gbps in zip(PAPER_FORMATS, (1.5168, 1.1376, 0.9954)):
            bandwidth = fmt.storage_bytes(values) / 0.010 / 1e9
            assert bandwidth == pytest.approx(gbps)


@given(
    st.floats(
        min_value=-2.0**83,
        max_value=2.0**83,
        allow_nan=False,
        allow_infinity=False,
        width=32,
    ),
    st.integers(min_value=1, max_value=23),
)
@settings(max_examples=200, deadline=None)
def test_property_quantize_within_ulp(value, mantissa_bits):
    """|q - x| <= 2^-m * |x| (half-ULP rounding, doubled for safety)."""
    # Subnormals have no implicit leading 1; the relative bound does
    # not apply to them (hardware flushes them anyway).
    assume(value == 0.0 or abs(np.float32(value)) >= 2.0**-126)
    fmt = FloatFormat(mantissa_bits=mantissa_bits)
    q = float(fmt.quantize(np.float32(value)))
    x = float(np.float32(value))
    assert abs(q - x) <= 2.0**-mantissa_bits * abs(x)


@given(
    st.lists(
        st.floats(
            min_value=-2.0**63, max_value=2.0**63, allow_nan=False, width=32
        ),
        min_size=1,
        max_size=50,
    ),
    st.integers(min_value=1, max_value=23),
)
@settings(max_examples=100, deadline=None)
def test_property_encode_decode_roundtrip(values, mantissa_bits):
    fmt = FloatFormat(mantissa_bits=mantissa_bits)
    arr = np.asarray(values, dtype=np.float32)
    assert np.array_equal(fmt.decode(fmt.encode(arr)), fmt.quantize(arr))


@given(st.integers(min_value=1, max_value=23))
@settings(max_examples=23, deadline=None)
def test_property_monotone_quantize(mantissa_bits):
    """Quantization preserves ordering."""
    fmt = FloatFormat(mantissa_bits=mantissa_bits)
    x = np.sort(np.random.default_rng(0).normal(size=300).astype(np.float32))
    q = fmt.quantize(x)
    assert np.all(np.diff(q) >= 0)
