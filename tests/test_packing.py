"""Tests for repro.quant.packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.packing import pack_bits, packed_size_bytes, unpack_bits


class TestPackedSize:
    def test_exact_byte_multiple(self):
        assert packed_size_bytes(8, 8) == 8
        assert packed_size_bytes(8, 21) == 21  # 168 bits

    def test_rounds_up(self):
        assert packed_size_bytes(3, 21) == 8  # 63 bits -> 8 bytes
        assert packed_size_bytes(1, 1) == 1

    def test_zero_count(self):
        assert packed_size_bytes(0, 32) == 0

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            packed_size_bytes(10, 0)
        with pytest.raises(ValueError):
            packed_size_bytes(10, 33)

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            packed_size_bytes(-1, 8)


class TestRoundtrip:
    @pytest.mark.parametrize("width", [1, 7, 8, 13, 21, 24, 32])
    def test_random_patterns(self, width):
        rng = np.random.default_rng(width)
        if width == 32:
            values = rng.integers(0, 2**32, size=257, dtype=np.uint64).astype(np.uint32)
        else:
            values = rng.integers(0, 2**width, size=257).astype(np.uint32)
        data = pack_bits(values, width)
        assert len(data) == packed_size_bytes(257, width)
        recovered = unpack_bits(data, width, 257)
        assert np.array_equal(recovered, values)

    def test_empty(self):
        assert pack_bits(np.array([], dtype=np.uint32), 21) == b""
        assert unpack_bits(b"", 21, 0).size == 0

    def test_rejects_overwide_values(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([1 << 21], dtype=np.uint32), 21)

    def test_rejects_truncated_data(self):
        data = pack_bits(np.arange(10, dtype=np.uint32), 16)
        with pytest.raises(ValueError):
            unpack_bits(data[:-1], 16, 10)

    def test_msb_first_layout(self):
        # Value 1 at width 8 -> byte 0x01; at width 1, bit in MSB.
        assert pack_bits(np.array([1], dtype=np.uint32), 8) == b"\x01"
        assert pack_bits(np.array([1], dtype=np.uint32), 1) == b"\x80"

    def test_final_byte_zero_padded(self):
        data = pack_bits(np.array([0b111], dtype=np.uint32), 3)
        assert data == bytes([0b11100000])


@given(
    st.integers(min_value=1, max_value=32),
    st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=0, max_size=100),
)
@settings(max_examples=150, deadline=None)
def test_property_roundtrip(width, raw):
    values = np.asarray([v & ((1 << width) - 1) for v in raw], dtype=np.uint32)
    assert np.array_equal(unpack_bits(pack_bits(values, width), width, len(values)), values)
