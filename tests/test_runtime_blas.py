"""Tolerance-parity suite for the matmul-form (BLAS) scoring backend.

``mode="blas"`` recasts Gaussian scoring as dense matrix products, so
it is the repo's one deliberately ``exact=False`` family: for every
runtime (sequential, drained batch, continuous) the contract is

* WORDS identical to the sequential reference decode, and
* SCORES within :data:`~repro.decoder.scorer.BLAS_SCORE_ATOL` of it

across batch sizes 1-8, ragged lengths and continuous arrival orders.
The sparse-demand fallback (gathered kernel below the density
threshold) is unit-tested directly against the pooled reference
kernel.  The command-task acceptance run lives in
``tests/test_golden_parity.py`` (``TestBlasGolden``), pinned to the
committed golden fixtures.
"""

import numpy as np
import pytest

from repro.decoder.recognizer import Recognizer
from repro.decoder.scorer import BLAS_SCORE_ATOL, BlasScorer, ReferenceScorer
from repro.runtime.batch import BatchRecognizer
from repro.runtime.scoring import BatchBlasScorer


@pytest.fixture(scope="module")
def reference(task):
    return Recognizer.create(
        task.dictionary, task.pool, task.lm, task.tying, mode="reference"
    )


@pytest.fixture(scope="module")
def blas(task):
    return Recognizer.create(
        task.dictionary, task.pool, task.lm, task.tying, mode="blas"
    )


@pytest.fixture(scope="module")
def expected(reference, task):
    """Sequential reference decodes of every test utterance (the oracle)."""
    return [reference.decode(u.features) for u in task.corpus.test]


def _assert_tolerance_parity(result, oracle):
    assert result.words == oracle.words
    assert result.frames == oracle.frames
    assert abs(result.score - oracle.score) <= BLAS_SCORE_ATOL


class TestSequentialBlas:
    def test_words_match_reference_scores_within_tolerance(
        self, blas, expected, task
    ):
        for utt, oracle in zip(task.corpus.test, expected):
            _assert_tolerance_parity(blas.decode(utt.features), oracle)

    def test_dense_kernel_served_the_decode(self, blas, task):
        blas.decode(task.corpus.test[0].features)
        assert blas.scorer.dense_frames > 0

    def test_documented_as_inexact(self, blas):
        assert blas.scorer.exact is False
        assert BlasScorer.exact is False
        assert BatchBlasScorer.exact is False

    def test_scorer_reset_clears_kernel_counters(self, task):
        rec = Recognizer.create(
            task.dictionary, task.pool, task.lm, task.tying, mode="blas"
        )
        rec.decode(task.corpus.test[0].features)
        assert rec.scorer.dense_frames + rec.scorer.fallback_frames > 0
        rec.scorer.reset()
        assert rec.scorer.dense_frames == 0
        assert rec.scorer.fallback_frames == 0


class TestBatchBlas:
    @pytest.mark.parametrize("batch_size", [1, 2, 3, 5, 8])
    def test_batch_sizes_match_reference(self, blas, expected, task, batch_size):
        feats = [u.features for u in task.corpus.test[:batch_size]]
        result = blas.as_batch().decode_batch(feats)
        assert len(result) == batch_size
        for lane, oracle in zip(result, expected[:batch_size]):
            _assert_tolerance_parity(lane, oracle)

    def test_ragged_lengths_match_reference(self, blas, reference, task, rng):
        feats = [
            u.features[: int(rng.integers(15, u.features.shape[0] + 1))]
            for u in task.corpus.test
        ]
        oracles = [reference.decode(f) for f in feats]
        for lane, oracle in zip(blas.as_batch().decode_batch(feats), oracles):
            _assert_tolerance_parity(lane, oracle)

    def test_batch_mode_uses_pooled_blas_backend(self, blas):
        batch = blas.as_batch()
        assert batch.mode == "blas"
        assert isinstance(batch.scorer, BatchBlasScorer)


class TestContinuousBlas:
    @pytest.mark.parametrize("max_lanes", [1, 2, 3, 8])
    def test_lane_budgets_match_reference(self, blas, expected, task, max_lanes):
        feats = [u.features for u in task.corpus.test]
        result = blas.as_continuous().decode_stream(feats, max_lanes=max_lanes)
        for lane, oracle in zip(result, expected):
            _assert_tolerance_parity(lane, oracle)

    def test_arrival_orders_match_reference(self, blas, expected, task, rng):
        feats = [u.features for u in task.corpus.test]
        for order in (
            list(range(len(feats)))[::-1],
            list(rng.permutation(len(feats))),
        ):
            result = blas.as_continuous().decode_stream(
                [feats[i] for i in order], max_lanes=3
            )
            for lane, i in zip(result, order):
                _assert_tolerance_parity(lane, expected[i])

    def test_generator_queue(self, blas, expected, task):
        feats = (u.features for u in task.corpus.test)
        result = blas.as_continuous().decode_stream(feats, max_lanes=2)
        for lane, oracle in zip(result, expected):
            _assert_tolerance_parity(lane, oracle)


class TestSparseDemandFallback:
    """The active-set threshold between the dense and gathered kernels."""

    def _demand(self, small_pool, rng, rows, senones_per_row):
        obs = rng.normal(0.0, 1.0, size=(rows, small_pool.dim))
        pair_rows, pair_senones = [], []
        for r in range(rows):
            picks = rng.choice(small_pool.num_senones, senones_per_row, replace=False)
            pair_rows.extend([r] * senones_per_row)
            pair_senones.extend(sorted(int(s) for s in picks))
        return obs, np.array(pair_rows), np.array(pair_senones)

    def test_sparse_demand_falls_back_to_gathered_kernel(self, small_pool, rng):
        scorer = BatchBlasScorer(small_pool, min_pairs=32)
        obs, pair_rows, pair_senones = self._demand(small_pool, rng, 2, 3)
        compact = scorer.score_pairs(obs, pair_rows, pair_senones)
        assert scorer.fallback_steps == 1 and scorer.dense_steps == 0
        # The fallback IS the reference kernel — bit-identical.
        np.testing.assert_array_equal(
            compact, small_pool.score_pairs(obs, pair_rows, pair_senones)
        )

    def test_low_density_falls_back(self, small_pool, rng):
        # Plenty of pairs, but spread thin over the rows x union grid.
        scorer = BatchBlasScorer(small_pool, min_pairs=0, min_density=0.9)
        obs, pair_rows, pair_senones = self._demand(small_pool, rng, 8, 6)
        scorer.score_pairs(obs, pair_rows, pair_senones)
        assert scorer.fallback_steps == 1 and scorer.dense_steps == 0

    def test_dense_demand_takes_matmul_kernel(self, small_pool, rng):
        scorer = BatchBlasScorer(small_pool, min_pairs=8, min_density=0.25)
        obs, pair_rows, pair_senones = self._demand(
            small_pool, rng, 4, small_pool.num_senones
        )
        compact = scorer.score_pairs(obs, pair_rows, pair_senones)
        assert scorer.dense_steps == 1 and scorer.fallback_steps == 0
        reference = small_pool.score_pairs(obs, pair_rows, pair_senones)
        np.testing.assert_allclose(compact, reference, atol=BLAS_SCORE_ATOL)

    def test_large_pool_gathers_subset_instead_of_full_table(
        self, small_pool, rng
    ):
        """Past the full-table budget the dense path gathers rows."""
        full = BlasScorer(small_pool)
        subset = BlasScorer(small_pool, full_table_elements=0)
        assert full._full_table and not subset._full_table
        obs = rng.normal(0.0, 1.0, size=small_pool.dim)
        senones = np.arange(small_pool.num_senones)
        a = full.score(0, obs, senones).copy()
        b = subset.score(0, obs, senones).copy()
        assert subset.dense_frames == 1
        np.testing.assert_allclose(a, b, atol=BLAS_SCORE_ATOL)

    def test_sequential_threshold_falls_back(self, small_pool, rng):
        blas = BlasScorer(small_pool, dense_threshold=small_pool.num_senones + 1)
        ref = ReferenceScorer(small_pool)
        obs = rng.normal(0.0, 1.0, size=small_pool.dim)
        senones = np.arange(0, small_pool.num_senones, 2)
        out = blas.score(0, obs, senones).copy()
        assert blas.fallback_frames == 1 and blas.dense_frames == 0
        np.testing.assert_array_equal(out, ref.score(0, obs, senones))

    def test_large_pool_batch_gathers_union_instead_of_full_table(
        self, small_pool, rng
    ):
        """Past the full-table budget the pooled dense path gathers the
        demanded union's senone-major blocks."""
        full = BatchBlasScorer(small_pool, min_pairs=0, min_density=0.0)
        subset = BatchBlasScorer(
            small_pool, min_pairs=0, min_density=0.0, full_table_elements=0
        )
        assert full._full_table and not subset._full_table
        obs, pair_rows, pair_senones = self._demand(small_pool, rng, 4, 12)
        a = full.score_pairs(obs, pair_rows, pair_senones)
        b = subset.score_pairs(obs, pair_rows, pair_senones)
        assert subset.dense_steps == 1 and subset.fallback_steps == 0
        np.testing.assert_allclose(a, b, atol=BLAS_SCORE_ATOL)
        reference = small_pool.score_pairs(obs, pair_rows, pair_senones)
        np.testing.assert_allclose(b, reference, atol=BLAS_SCORE_ATOL)

    def test_empty_demand(self, small_pool):
        scorer = BatchBlasScorer(small_pool)
        out = scorer.score_pairs(
            np.zeros((2, small_pool.dim)), np.empty(0, np.int64), np.empty(0, np.int64)
        )
        assert out.size == 0
        assert scorer.dense_steps == 0 and scorer.fallback_steps == 0


class TestModeRegistration:
    def test_sequential_unknown_mode_names_supported_modes(self, task):
        with pytest.raises(ValueError) as err:
            Recognizer.create(
                task.dictionary, task.pool, task.lm, task.tying, mode="quantum"
            )
        message = str(err.value)
        for mode in Recognizer.SUPPORTED_MODES:
            assert repr(mode) in message

    def test_batch_supported_modes_include_blas(self):
        assert "blas" in BatchRecognizer.SUPPORTED_MODES
        assert "blas" in Recognizer.SUPPORTED_MODES

    def test_continuous_twin_keeps_blas_mode(self, blas):
        cont = blas.as_continuous()
        assert cont.mode == "blas"
        assert isinstance(cont.scorer, BatchBlasScorer)
