"""Tests for repro.decoder.fast_gmm — the four-layer scheme."""

import numpy as np
import pytest

from repro.decoder.fast_gmm import FastGmmConfig, FastGmmScorer
from repro.decoder.scorer import LOG_ZERO
from repro.hmm.senone import SenonePool
from repro.lexicon.triphone import SenoneTying


@pytest.fixture()
def pool_and_tying():
    tying = SenoneTying(num_senones=6000)
    pool = SenonePool.random(6000, num_components=4, dim=13,
                             rng=np.random.default_rng(8))
    return pool, tying


def _exact(pool, obs, senones):
    return pool.score_frame(obs, senones)[senones]


class TestBaselineEquivalence:
    def test_all_layers_off_is_exact(self, small_pool, rng):
        scorer = FastGmmScorer(small_pool, config=FastGmmConfig())
        obs = rng.normal(size=small_pool.dim)
        senones = np.arange(small_pool.num_senones)
        out = scorer.score(0, obs, senones)
        assert np.allclose(out[senones], _exact(small_pool, obs, senones))


class TestLayer1Cds:
    def test_skips_similar_frames(self, small_pool, rng):
        cfg = FastGmmConfig(cds_enabled=True, cds_distance=1e9)
        scorer = FastGmmScorer(small_pool, config=cfg)
        senones = np.arange(small_pool.num_senones)
        obs = rng.normal(size=small_pool.dim)
        scorer.score(0, obs, senones)
        scorer.score(1, obs + 1e-6, senones)
        assert scorer.fast_stats.frames_skipped == 1

    def test_skip_reuses_previous_scores(self, small_pool, rng):
        cfg = FastGmmConfig(cds_enabled=True, cds_distance=1e9)
        scorer = FastGmmScorer(small_pool, config=cfg)
        senones = np.arange(small_pool.num_senones)
        obs = rng.normal(size=small_pool.dim)
        first = scorer.score(0, obs, senones)
        second = scorer.score(1, obs + 10.0, senones)  # forced reuse
        assert np.allclose(first, second)

    def test_max_run_limits_skipping(self, small_pool, rng):
        cfg = FastGmmConfig(cds_enabled=True, cds_distance=1e9, cds_max_run=2)
        scorer = FastGmmScorer(small_pool, config=cfg)
        senones = np.arange(small_pool.num_senones)
        for t in range(6):
            scorer.score(t, rng.normal(size=small_pool.dim) * 1e-3, senones)
        # Pattern: score, skip, skip, score, skip, skip.
        assert scorer.fast_stats.frames_skipped == 4

    def test_distant_frames_not_skipped(self, small_pool, rng):
        cfg = FastGmmConfig(cds_enabled=True, cds_distance=1e-9)
        scorer = FastGmmScorer(small_pool, config=cfg)
        senones = np.arange(small_pool.num_senones)
        scorer.score(0, rng.normal(size=small_pool.dim), senones)
        scorer.score(1, rng.normal(size=small_pool.dim) + 5, senones)
        assert scorer.fast_stats.frames_skipped == 0

    def test_missing_senones_filled_on_skip(self, small_pool, rng):
        cfg = FastGmmConfig(cds_enabled=True, cds_distance=1e9)
        scorer = FastGmmScorer(small_pool, config=cfg)
        obs = rng.normal(size=small_pool.dim)
        scorer.score(0, obs, np.array([0, 1]))
        out = scorer.score(1, obs, np.array([0, 5]))  # 5 never scored
        assert out[5] > LOG_ZERO / 2


class TestLayer2CiSelection:
    def test_requires_tying(self, small_pool):
        with pytest.raises(ValueError):
            FastGmmScorer(small_pool, config=FastGmmConfig(ci_selection_enabled=True))

    def test_cd_scores_exact_when_selected(self, pool_and_tying, rng):
        pool, tying = pool_and_tying
        cfg = FastGmmConfig(ci_selection_enabled=True, ci_margin=1e9)
        scorer = FastGmmScorer(pool, tying=tying, config=cfg)
        obs = rng.normal(size=pool.dim)
        senones = np.arange(200, 230)
        out = scorer.score(0, obs, senones)
        assert np.allclose(out[senones], _exact(pool, obs, senones))

    def test_tight_margin_approximates(self, pool_and_tying, rng):
        pool, tying = pool_and_tying
        cfg = FastGmmConfig(ci_selection_enabled=True, ci_margin=0.5)
        scorer = FastGmmScorer(pool, tying=tying, config=cfg)
        obs = rng.normal(size=pool.dim)
        senones = np.arange(200, 400)
        scorer.score(0, obs, senones)
        stats = scorer.fast_stats
        assert stats.senones_approximated > 0
        assert stats.senones_full + stats.senones_approximated >= senones.size


class TestLayer3GaussianSelection:
    def test_reduces_gaussians(self, small_pool, rng):
        cfg = FastGmmConfig(gaussian_selection_enabled=True, gs_shortlist=2)
        scorer = FastGmmScorer(small_pool, config=cfg, codebook_data=None)
        obs = rng.normal(size=small_pool.dim)
        senones = np.arange(small_pool.num_senones)
        scorer.score(0, obs, senones)
        stats = scorer.fast_stats
        assert stats.gaussian_fraction == pytest.approx(
            2 / small_pool.num_components
        )

    def test_scores_lower_bound_exact(self, small_pool, rng):
        """Dropping components can only lower a mixture score."""
        cfg = FastGmmConfig(gaussian_selection_enabled=True, gs_shortlist=2)
        scorer = FastGmmScorer(small_pool, config=cfg)
        obs = rng.normal(size=small_pool.dim)
        senones = np.arange(small_pool.num_senones)
        out = scorer.score(0, obs, senones)
        exact = _exact(small_pool, obs, senones)
        assert np.all(out[senones] <= exact + 1e-9)
        # And close: the shortlist keeps the dominant components.
        assert np.median(exact - out[senones]) < 1.0


class TestLayer4Pde:
    def test_exact_for_surviving_components(self, small_pool, rng):
        cfg = FastGmmConfig(pde_enabled=True, pde_margin=1e9)
        scorer = FastGmmScorer(small_pool, config=cfg)
        obs = rng.normal(size=small_pool.dim)
        senones = np.arange(small_pool.num_senones)
        out = scorer.score(0, obs, senones)
        assert np.allclose(out[senones], _exact(small_pool, obs, senones))

    def test_saves_dimensions(self, small_pool, rng):
        cfg = FastGmmConfig(pde_enabled=True, pde_margin=2.0, pde_chunk=4)
        scorer = FastGmmScorer(small_pool, config=cfg)
        obs = rng.normal(size=small_pool.dim)
        senones = np.arange(small_pool.num_senones)
        scorer.score(0, obs, senones)
        assert scorer.fast_stats.dim_fraction < 1.0

    def test_best_component_survives(self, small_pool, rng):
        """PDE must never kill a senone entirely."""
        cfg = FastGmmConfig(pde_enabled=True, pde_margin=0.1, pde_chunk=2)
        scorer = FastGmmScorer(small_pool, config=cfg)
        obs = rng.normal(size=small_pool.dim)
        senones = np.arange(small_pool.num_senones)
        out = scorer.score(0, obs, senones)
        assert np.all(out[senones] > LOG_ZERO / 2)


class TestActivityExport:
    def test_activity_reflects_savings(self, small_pool, rng):
        full = FastGmmScorer(small_pool, config=FastGmmConfig())
        lean = FastGmmScorer(
            small_pool,
            config=FastGmmConfig(gaussian_selection_enabled=True, gs_shortlist=1),
        )
        obs = rng.normal(size=small_pool.dim)
        senones = np.arange(small_pool.num_senones)
        full.score(0, obs, senones)
        lean.score(0, obs, senones)
        assert (
            lean.equivalent_activity()["sdm_ops"]
            < full.equivalent_activity()["sdm_ops"]
        )

    def test_reset(self, small_pool, rng):
        scorer = FastGmmScorer(small_pool, config=FastGmmConfig(cds_enabled=True))
        scorer.score(0, rng.normal(size=small_pool.dim), np.arange(5))
        scorer.reset()
        assert scorer.fast_stats.frames == 0
        assert scorer.stats.frames == 0


class TestStatsInvariants:
    """Guards the sequential-only fast path before it is ever batched:
    the work fractions must be true fractions, and ``reset()`` must
    leave no cross-utterance reuse state behind."""

    def _all_layers(self, pool, tying):
        cfg = FastGmmConfig(
            cds_enabled=True,
            cds_distance=12.0,
            ci_selection_enabled=True,
            ci_margin=5.0,
            gaussian_selection_enabled=True,
            gs_shortlist=2,
            pde_enabled=True,
            pde_margin=4.0,
            pde_chunk=4,
        )
        return FastGmmScorer(pool, tying=tying, config=cfg)

    def test_fractions_stay_in_unit_interval(self, pool_and_tying, rng):
        pool, tying = pool_and_tying
        scorer = self._all_layers(pool, tying)
        senones = np.arange(100, 400)
        for t in range(8):
            obs = rng.normal(size=pool.dim) * (0.1 if t % 3 else 5.0)
            scorer.score(t, obs, senones)
            s = scorer.fast_stats
            for frac in (s.skip_fraction, s.gaussian_fraction, s.dim_fraction):
                assert 0.0 <= frac <= 1.0
            assert s.frames_skipped <= s.frames
            assert s.gaussians_evaluated <= s.gaussians_possible
            assert s.dims_evaluated <= s.dims_possible

    def test_fractions_zero_before_any_frame(self, small_pool):
        scorer = FastGmmScorer(small_pool, config=FastGmmConfig())
        s = scorer.fast_stats
        assert (s.skip_fraction, s.gaussian_fraction, s.dim_fraction) == (0, 0, 0)

    def test_reset_clears_reuse_state(self, small_pool, rng):
        """After reset the CDS cache is gone: the next frame is scored
        in full even if it is identical to the last one seen."""
        cfg = FastGmmConfig(cds_enabled=True, cds_distance=1e9)
        scorer = FastGmmScorer(small_pool, config=cfg)
        senones = np.arange(small_pool.num_senones)
        obs = rng.normal(size=small_pool.dim)
        scorer.score(0, obs, senones)
        scorer.score(1, obs, senones)  # skipped (reuse)
        assert scorer.fast_stats.frames_skipped == 1
        scorer.reset()
        assert scorer.lane.last_obs is None
        assert scorer.lane.last_scores is None
        assert scorer.lane.skip_run == 0
        scorer.score(0, obs, senones)  # same frame, fresh utterance
        assert scorer.fast_stats.frames == 1
        assert scorer.fast_stats.frames_skipped == 0

    def test_reset_makes_utterances_independent(self, small_pool, rng):
        """Score -> reset -> score the same frames: identical outputs
        and identical work counters (no state leaks across utterances)."""
        cfg = FastGmmConfig(cds_enabled=True, cds_distance=1e9, cds_max_run=1)
        scorer = FastGmmScorer(small_pool, config=cfg)
        senones = np.arange(small_pool.num_senones)
        frames = rng.normal(size=(4, small_pool.dim))

        def run():
            out = [scorer.score(t, f, senones).copy() for t, f in enumerate(frames)]
            counters = (
                scorer.fast_stats.frames,
                scorer.fast_stats.frames_skipped,
                scorer.fast_stats.gaussians_evaluated,
                scorer.fast_stats.dims_evaluated,
                scorer.stats.active_per_frame,
            )
            return out, counters

        first, counters_a = run()
        scorer.reset()
        second, counters_b = run()
        assert counters_a == counters_b
        for a, b in zip(first, second):
            assert np.array_equal(a, b)


class TestConfigValidation:
    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            FastGmmConfig(cds_distance=0)
        with pytest.raises(ValueError):
            FastGmmConfig(cds_max_run=0)
        with pytest.raises(ValueError):
            FastGmmConfig(gs_codebook_size=0)
        with pytest.raises(ValueError):
            FastGmmConfig(pde_chunk=0)
