"""Tests for repro.core.memory."""

import pytest

from repro.core.memory import (
    GB,
    MB,
    BandwidthMeter,
    DmaChannel,
    FlashMemory,
    Sram,
)


class TestFlash:
    def test_store_and_lookup(self):
        flash = FlashMemory(capacity_bytes=32 * MB)
        region = flash.store("acoustic-model", 15.168 * MB)
        assert region.num_bytes == 15.168 * MB
        assert flash.region("acoustic-model").name == "acoustic-model"

    def test_capacity_enforced(self):
        flash = FlashMemory(capacity_bytes=10 * MB)
        flash.store("a", 8 * MB)
        with pytest.raises(MemoryError):
            flash.store("b", 4 * MB)

    def test_replace_region(self):
        flash = FlashMemory(capacity_bytes=10 * MB)
        flash.store("a", 8 * MB)
        flash.store("a", 2 * MB)  # replacement frees the old allocation
        assert flash.total_stored_bytes == 2 * MB

    def test_failed_replace_keeps_original(self):
        flash = FlashMemory(capacity_bytes=10 * MB)
        flash.store("a", 4 * MB)
        flash.store("b", 4 * MB)
        with pytest.raises(MemoryError):
            flash.store("a", 8 * MB)
        assert flash.region("a").num_bytes == 4 * MB

    def test_unknown_region(self):
        with pytest.raises(KeyError):
            FlashMemory().region("nope")

    def test_read_accounting(self):
        flash = FlashMemory()
        flash.store("model", MB)
        flash.record_read("model", 1000.0)
        flash.record_read("model", 500.0)
        region = flash.region("model")
        assert region.reads == 2
        assert region.bytes_read == 1500.0

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            FlashMemory(capacity_bytes=0)
        with pytest.raises(ValueError):
            FlashMemory().store("x", -1)


class TestDma:
    def test_transfer_accounting(self):
        flash = FlashMemory()
        flash.store("model", MB)
        dma = DmaChannel(flash)
        dma.transfer("model", 2528.0)
        dma.transfer("model", 2528.0)
        assert dma.transfers == 2
        assert dma.bytes_transferred == 5056.0
        assert dma.total_setup_cycles == 2 * dma.setup_cycles
        assert flash.region("model").bytes_read == 5056.0


class TestSram:
    def test_allocation_and_highwater(self):
        sram = Sram(capacity_bytes=1000)
        sram.allocate("delta", 600)
        sram.allocate("payload", 300)
        assert sram.allocated_bytes() == 900
        sram.free("payload")
        assert sram.allocated_bytes() == 600
        assert sram.high_water_bytes == 900

    def test_overflow(self):
        sram = Sram(capacity_bytes=100)
        with pytest.raises(MemoryError):
            sram.allocate("big", 200)

    def test_access_counters(self):
        sram = Sram()
        sram.record_read(64)
        sram.record_write(128)
        assert sram.reads == 1 and sram.writes == 1
        assert sram.bytes_read == 64 and sram.bytes_written == 128


class TestBandwidthMeter:
    def test_paper_worst_case(self):
        """15.168 MB per 10 ms frame = 1.5168 GB/s (Section IV-B)."""
        meter = BandwidthMeter(frame_period_s=0.010)
        meter.record_frame(15.168 * MB)
        assert meter.peak_gb_per_second() == pytest.approx(1.5168)

    def test_mean_vs_peak(self):
        meter = BandwidthMeter(frame_period_s=0.010)
        meter.record_frame(10 * MB)
        meter.record_frame(20 * MB)
        assert meter.peak_bytes_per_second == pytest.approx(20 * MB / 0.010)
        assert meter.mean_bytes_per_second == pytest.approx(15 * MB / 0.010)

    def test_empty_meter(self):
        meter = BandwidthMeter()
        assert meter.peak_gb_per_second() == 0.0
        assert meter.mean_gb_per_second() == 0.0
        assert meter.frames == 0

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            BandwidthMeter(frame_period_s=0)
        with pytest.raises(ValueError):
            BandwidthMeter().record_frame(-1)

    def test_units(self):
        assert GB == 1e9 and MB == 1e6
