"""Tests for repro.frontend — DSP, filterbank, MFCC, feature pipeline."""

import numpy as np
import pytest

from repro.frontend.dsp import apply_window, frame_signal, hamming_window, pre_emphasis
from repro.frontend.features import (
    Frontend,
    FrontendConfig,
    cepstral_mean_normalize,
    delta_features,
)
from repro.frontend.filterbank import (
    apply_filterbank,
    hz_to_mel,
    mel_filterbank,
    mel_to_hz,
)
from repro.frontend.mfcc import cepstra, dct_matrix, lifter, power_spectrum


class TestDsp:
    def test_pre_emphasis_dc_removal(self):
        # A DC signal should be almost entirely removed (first sample aside).
        out = pre_emphasis(np.ones(100), 0.97)
        assert np.allclose(out[1:], 0.03)

    def test_pre_emphasis_empty(self):
        assert pre_emphasis(np.array([])).size == 0

    def test_pre_emphasis_rejects_bad_coefficient(self):
        with pytest.raises(ValueError):
            pre_emphasis(np.ones(10), 1.0)

    def test_frame_count(self):
        frames = frame_signal(np.arange(1000, dtype=float), 400, 160)
        assert frames.shape == (4, 400)  # 1 + (1000-400)//160 = 4

    def test_frame_overlap(self):
        frames = frame_signal(np.arange(1000, dtype=float), 400, 160)
        assert frames[1, 0] == 160.0

    def test_short_signal_empty(self):
        assert frame_signal(np.arange(10, dtype=float), 400, 160).shape == (0, 400)

    def test_hamming_endpoints(self):
        w = hamming_window(400)
        assert w[0] == pytest.approx(0.08)
        assert w.max() == pytest.approx(1.0, abs=1e-3)  # even length: peak off-grid

    def test_window_shape_mismatch(self):
        with pytest.raises(ValueError):
            apply_window(np.zeros((2, 10)), np.ones(11))


class TestFilterbank:
    def test_mel_roundtrip(self):
        hz = np.array([100.0, 1000.0, 4000.0])
        assert np.allclose(mel_to_hz(hz_to_mel(hz)), hz)

    def test_bank_shape_and_coverage(self):
        bank = mel_filterbank(40, 512, 16000)
        assert bank.shape == (40, 257)
        assert np.all(bank >= 0)
        # Every filter has some mass.
        assert np.all(bank.sum(axis=1) > 0)

    def test_triangles_peak_once(self):
        bank = mel_filterbank(20, 512, 16000)
        for f in range(20):
            peak = bank[f].argmax()
            left = bank[f, :peak]
            right = bank[f, peak:]
            assert np.all(np.diff(left) >= -1e-12)
            assert np.all(np.diff(right) <= 1e-12)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            mel_filterbank(0, 512, 16000)
        with pytest.raises(ValueError):
            mel_filterbank(40, 500, 16000)  # not a power of two
        with pytest.raises(ValueError):
            mel_filterbank(40, 512, 16000, low_hz=9000)

    def test_energies_floored(self):
        bank = mel_filterbank(10, 64, 8000)
        energies = apply_filterbank(np.zeros((3, 33)), bank)
        assert np.all(energies >= 1e-10)


class TestMfcc:
    def test_power_spectrum_parseval(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 256))
        ps = power_spectrum(x, 256)
        # One-sided power spectrum sums to ~signal energy / N terms.
        two_sided = np.abs(np.fft.fft(x[0], 256)) ** 2 / 256
        assert ps[0, 0] == pytest.approx(two_sided[0])

    def test_dct_orthonormal_rows(self):
        basis = dct_matrix(13, 40)
        gram = basis @ basis.T
        assert np.allclose(gram, np.eye(13), atol=1e-12)

    def test_cepstra_shape(self):
        ceps = cepstra(np.zeros((5, 40)), 13)
        assert ceps.shape == (5, 13)

    def test_lifter_identity_when_disabled(self):
        block = np.random.default_rng(1).normal(size=(4, 13))
        assert np.array_equal(lifter(block, 0), block)

    def test_lifter_weights_first_coefficient_unchanged(self):
        block = np.ones((1, 13))
        out = lifter(block, 22)
        assert out[0, 0] == pytest.approx(1.0)


class TestFeaturePipeline:
    def test_output_dimension(self):
        fe = Frontend()
        feats = fe.extract(np.random.default_rng(0).normal(size=8000))
        assert feats.shape[1] == 39

    def test_frame_count_formula(self):
        fe = Frontend()
        n = 8000
        feats = fe.extract(np.random.default_rng(0).normal(size=n))
        assert feats.shape[0] == fe.num_frames(n)

    def test_cmn_zero_mean(self):
        x = np.random.default_rng(2).normal(size=(50, 13)) + 5.0
        normalized = cepstral_mean_normalize(x)
        assert np.allclose(normalized.mean(axis=0), 0.0, atol=1e-12)

    def test_delta_of_constant_is_zero(self):
        static = np.ones((20, 13)) * 3.0
        assert np.allclose(delta_features(static), 0.0)

    def test_delta_of_linear_ramp(self):
        # d/dt of a unit ramp is 1 away from the edges.
        static = np.arange(30, dtype=float)[:, None]
        deltas = delta_features(static, window=2)
        assert np.allclose(deltas[5:-5], 1.0)

    def test_empty_waveform(self):
        fe = Frontend()
        assert fe.extract(np.zeros(10)).shape == (0, 39)

    def test_different_phones_distinct_features(self):
        """The synthetic phones must be separable after MFCC.

        Raw cepstra are compared — per-utterance CMN would remove the
        mean of a single steady phone by construction.
        """
        from repro.workloads.synthesizer import PhoneSynthesizer

        rng = np.random.default_rng(3)
        synth = PhoneSynthesizer()
        fe = Frontend()
        a = fe.static_cepstra(synth.synthesize_phone("AA", 0.3, rng))
        s = fe.static_cepstra(synth.synthesize_phone("S", 0.3, rng))
        gap = np.linalg.norm(a.mean(axis=0) - s.mean(axis=0))
        assert gap > 3.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FrontendConfig(sample_rate=0)
        with pytest.raises(ValueError):
            FrontendConfig(frame_length_s=0.005, frame_shift_s=0.010)
        with pytest.raises(ValueError):
            FrontendConfig(fft_size=128)  # 400-sample frame > 128

    def test_feature_dim_property(self):
        assert FrontendConfig(num_cepstra=13).feature_dim == 39
