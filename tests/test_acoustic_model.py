"""Tests for repro.hmm.acoustic_model — container and flash image."""

import io

import numpy as np
import pytest

from repro.hmm.acoustic_model import AcousticModel, memory_bandwidth_table
from repro.hmm.senone import SenonePool
from repro.hmm.topology import HmmTopology, PhoneHmm
from repro.quant.float_formats import (
    IEEE_SINGLE,
    MANTISSA_12,
    MANTISSA_15,
    PAPER_FORMATS,
)


@pytest.fixture()
def model(small_pool):
    topo = HmmTopology(num_states=3)
    hmms = {
        "AA": PhoneHmm(name="AA", topology=topo, senone_ids=(0, 1, 2)),
        "B": PhoneHmm(name="B", topology=topo, senone_ids=(3, 4, 5)),
    }
    return AcousticModel(pool=small_pool, hmms=hmms)


class TestContainer:
    def test_hmm_lookup(self, model):
        assert model.hmm("AA").senone_ids == (0, 1, 2)
        with pytest.raises(KeyError):
            model.hmm("ZZ")

    def test_senone_reference_validated(self, small_pool):
        topo = HmmTopology(num_states=3)
        bad = PhoneHmm(name="X", topology=topo, senone_ids=(0, 1, 999))
        with pytest.raises(ValueError):
            AcousticModel(pool=small_pool, hmms={"X": bad})

    def test_add_hmm_validates(self, model):
        topo = HmmTopology(num_states=3)
        with pytest.raises(ValueError):
            model.add_hmm(PhoneHmm(name="Y", topology=topo, senone_ids=(0, 1, 9999)))

    def test_frame_period_validated(self, small_pool):
        with pytest.raises(ValueError):
            AcousticModel(pool=small_pool, frame_period_s=0.0)


class TestSerialization:
    @pytest.mark.parametrize("fmt", PAPER_FORMATS, ids=lambda f: f.name)
    def test_roundtrip(self, model, fmt):
        buf = io.BytesIO()
        model.save(buf, fmt)
        buf.seek(0)
        loaded, loaded_fmt = AcousticModel.load(buf)
        assert loaded_fmt.mantissa_bits == fmt.mantissa_bits
        # Stored parameters equal the quantized originals.
        expected = fmt.quantize(model.pool.means.astype(np.float32)).astype(np.float64)
        assert np.allclose(loaded.pool.means, expected)
        assert set(loaded.hmms) == set(model.hmms)
        assert loaded.hmm("AA").senone_ids == (0, 1, 2)
        assert loaded.frame_period_s == model.frame_period_s

    def test_roundtrip_is_stable(self, model):
        """Quantize -> save -> load -> save produces identical bytes."""
        buf1 = io.BytesIO()
        model.save(buf1, MANTISSA_12)
        buf1.seek(0)
        loaded, _ = AcousticModel.load(buf1)
        buf2 = io.BytesIO()
        loaded.save(buf2, MANTISSA_12)
        # Weight renormalisation on load may perturb the weight block;
        # means/variances (the bulk) must be bit-identical.
        n = loaded.pool.num_senones * loaded.pool.num_components * loaded.pool.dim
        header = 32
        body1 = buf1.getvalue()[header:]
        body2 = buf2.getvalue()[header:]
        span = (2 * n * 21) // 8
        assert body1[:span] == body2[:span]

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            AcousticModel.load(io.BytesIO(b"NOPE" + b"\x00" * 60))

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            AcousticModel.load(io.BytesIO(b"RP"))

    def test_file_roundtrip(self, model, tmp_path):
        path = tmp_path / "model.bin"
        written = model.save(path, MANTISSA_15)
        assert path.stat().st_size == written
        loaded, fmt = AcousticModel.load(path)
        assert fmt.mantissa_bits == 15
        assert loaded.num_hmms == model.num_hmms


class TestSizeAccounting:
    def test_parameter_image_scales_with_mantissa(self, model):
        full = model.parameter_image_bytes(IEEE_SINGLE)
        narrow = model.parameter_image_bytes(MANTISSA_12)
        assert narrow == pytest.approx(full * 21 / 32, abs=3)

    def test_memory_bandwidth_table_rows(self, model):
        rows = memory_bandwidth_table(model, PAPER_FORMATS)
        assert [r["mantissa_bits"] for r in rows] == [23, 15, 12]
        assert rows[0]["memory_mb"] > rows[1]["memory_mb"] > rows[2]["memory_mb"]
        # Bandwidth = memory / frame period.
        for row in rows:
            assert row["bandwidth_gbps"] == pytest.approx(
                row["memory_mb"] / 1e3 / model.frame_period_s, rel=1e-9
            )

    def test_paper_scale_numbers(self):
        """Full WSJ configuration reproduces the Section IV-B table."""
        pool = SenonePool.random(60, 8, 39)  # 1% scale, same layout
        model = AcousticModel(pool=pool)
        rows = memory_bandwidth_table(model, PAPER_FORMATS)
        scale = 6000 / 60
        assert rows[0]["memory_mb"] * scale == pytest.approx(15.168)
        assert rows[1]["memory_mb"] * scale == pytest.approx(11.376)
        assert rows[2]["memory_mb"] * scale == pytest.approx(9.954)
        assert rows[0]["bandwidth_gbps"] * scale == pytest.approx(1.5168)
