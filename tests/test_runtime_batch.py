"""Tests for repro.runtime — batch-vs-sequential equivalence.

The batched runtime's whole contract is that stacking utterances
changes nothing: every lane's words, path score, per-frame statistics
and lattice must be identical to a sequential decode of the same
features, in reference and hardware modes, including ragged batches.
"""

import numpy as np
import pytest

from repro.core.logadd import LogAddTable
from repro.decoder.beam import BeamConfig, apply_beam, apply_beam_batch
from repro.decoder.recognizer import Recognizer
from repro.runtime import BatchRecognizer


@pytest.fixture(scope="module", params=["reference", "hardware"])
def pair(request, task):
    """A sequential recognizer and its batched twin, per mode."""
    rec = Recognizer.create(
        task.dictionary, task.pool, task.lm, task.tying, mode=request.param
    )
    return rec, rec.as_batch()


def _assert_lane_equal(seq, lane):
    assert lane.words == seq.words
    assert lane.score == seq.score  # bit-identical, not approx
    assert lane.frames == seq.frames
    assert lane.lattice_size == seq.lattice_size
    assert [f.__dict__ for f in lane.frame_stats] == [
        f.__dict__ for f in seq.frame_stats
    ]
    assert lane.scoring_stats.active_per_frame == seq.scoring_stats.active_per_frame
    assert lane.fast_stats == seq.fast_stats  # None outside fast mode


class TestEquivalence:
    def test_batch_matches_sequential(self, pair, task):
        rec, batch = pair
        utts = task.corpus.test[:6]
        sequential = [rec.decode(u.features) for u in utts]
        result = batch.decode_batch([u.features for u in utts])
        assert len(result) == len(utts)
        for seq, lane in zip(sequential, result):
            _assert_lane_equal(seq, lane)

    def test_ragged_lengths_do_not_leak(self, pair, task):
        """Padding frames must not touch short lanes' stats/lattices."""
        rec, batch = pair
        feats = [u.features for u in task.corpus.test[:4]]
        # Force very ragged lengths: truncate two lanes hard.
        feats[1] = feats[1][: feats[1].shape[0] // 3]
        feats[3] = feats[3][:7]
        sequential = [rec.decode(f) for f in feats]
        result = batch.decode_batch(feats)
        for f, seq, lane in zip(feats, sequential, result):
            assert lane.frames == f.shape[0]
            assert len(lane.frame_stats) == f.shape[0]
            assert lane.scoring_stats.frames == f.shape[0]
            _assert_lane_equal(seq, lane)

    def test_batch_of_one(self, pair, task):
        rec, batch = pair
        utt = task.corpus.test[0]
        seq = rec.decode(utt.features)
        result = batch.decode_batch([utt.features])
        _assert_lane_equal(seq, result[0])

    def test_reusable_across_batches(self, pair, task):
        _, batch = pair
        feats = [u.features for u in task.corpus.test[:2]]
        first = batch.decode_batch(feats)
        second = batch.decode_batch(feats)
        for a, b in zip(first, second):
            assert a.words == b.words and a.score == b.score

    def test_duplicate_utterances_agree(self, pair, task):
        """Identical lanes must produce identical outputs."""
        _, batch = pair
        f = task.corpus.test[1].features
        result = batch.decode_batch([f, f, f])
        assert result[0].words == result[1].words == result[2].words
        assert result[0].score == result[1].score == result[2].score


class TestBatchResult:
    def test_container_protocol(self, pair, task):
        _, batch = pair
        feats = [u.features for u in task.corpus.test[:3]]
        result = batch.decode_batch(feats)
        assert len(result) == 3
        assert [r.words for r in result] == result.words
        assert result.frames_processed == sum(f.shape[0] for f in feats)
        assert result.steps == max(f.shape[0] for f in feats)
        assert result.audio_seconds == pytest.approx(
            sum(f.shape[0] for f in feats) * 0.010
        )

    def test_hardware_accounting_present(self, task):
        rec = Recognizer.create(
            task.dictionary, task.pool, task.lm, task.tying, mode="hardware"
        )
        batch = rec.as_batch()
        feats = [u.features for u in task.corpus.test[:2]]
        result = batch.decode_batch(feats)
        assert result.op_unit_activities is not None
        assert result.viterbi_activity is not None
        assert result.frame_critical_cycles is not None
        assert len(result.frame_critical_cycles) == result.steps
        assert result.op_unit_activities[0]["cycles_busy"] > 0


class TestLaneRetirementAccounting:
    """Lane accounting must come from each lane's TRUE length — never
    the padded batch length (regression guard for drain-to-longest)."""

    def test_strongly_ragged_accounting(self, pair, task):
        _, batch = pair
        base = [u.features for u in task.corpus.test[:4]]
        # One full-length lane next to lanes cut to a handful of frames.
        feats = [base[0], base[1][:5], base[2][:9], base[3][:6]]
        result = batch.decode_batch(feats)
        true_frames = [f.shape[0] for f in feats]
        assert result.steps == max(true_frames)
        assert result.frames_processed == sum(true_frames)
        # audio_seconds from true lengths, NOT steps * lanes * period.
        assert result.audio_seconds == pytest.approx(sum(true_frames) * 0.010)
        assert result.audio_seconds < result.steps * len(feats) * 0.010
        for f, lane in zip(feats, result):
            assert lane.frames == f.shape[0]
            assert len(lane.frame_stats) == f.shape[0]
            assert lane.scoring_stats.frames == f.shape[0]
            assert [s.frame for s in lane.frame_stats] == list(range(f.shape[0]))

    def test_utilization_reflects_padding_waste(self, pair, task):
        _, batch = pair
        base = [u.features for u in task.corpus.test[:2]]
        ragged = batch.decode_batch([base[0], base[1][:5]])
        assert 0.0 < ragged.utilization < 1.0
        expected = ragged.frames_processed / (ragged.steps * 2)
        assert ragged.utilization == pytest.approx(expected)
        # A rectangular batch wastes nothing.
        square = batch.decode_batch([base[0], base[0]])
        assert square.utilization == 1.0


class TestValidation:
    def test_unknown_mode_error_names_supported_modes(self, task):
        """The error must be raised up front and teach the fix."""
        with pytest.raises(ValueError) as err:
            BatchRecognizer.create(
                task.dictionary, task.pool, task.lm, task.tying, mode="turbo"
            )
        message = str(err.value)
        assert "turbo" in message
        for mode in ("'reference'", "'hardware'", "'fast'"):
            assert mode in message

    def test_fast_mode_accepted(self, task):
        batch = BatchRecognizer.create(
            task.dictionary, task.pool, task.lm, task.tying, mode="fast"
        )
        assert batch.mode == "fast"

    def test_rejects_empty_batch(self, pair):
        _, batch = pair
        with pytest.raises(ValueError):
            batch.decode_batch([])

    def test_rejects_bad_shapes(self, pair, task):
        _, batch = pair
        good = task.corpus.test[0].features
        with pytest.raises(ValueError):
            batch.decode_batch([good, np.zeros((10, 7))])
        with pytest.raises(ValueError):
            batch.decode_batch([np.zeros((0, good.shape[1]))])


class TestBatchedKernels:
    def test_apply_beam_batch_matches_rows(self, rng):
        cfg = BeamConfig(state_beam=5.0, word_beam=4.0)
        bank = np.where(
            rng.random((6, 40)) < 0.3, -1.0e30, rng.normal(scale=4.0, size=(6, 40))
        )
        bank[2, :] = -1.0e30  # a dead lane
        rows = bank.copy()
        expected_masks, expected_counts = [], []
        for b in range(rows.shape[0]):
            mask, count = apply_beam(rows[b], cfg)
            expected_masks.append(mask)
            expected_counts.append(count)
        masks, counts = apply_beam_batch(bank, cfg)
        assert np.array_equal(bank, rows)
        assert np.array_equal(masks, np.stack(expected_masks))
        assert counts.tolist() == expected_counts

    def test_apply_beam_batch_histogram_cap(self, rng):
        cfg = BeamConfig(state_beam=50.0, word_beam=4.0, max_active_states=3)
        bank = rng.normal(size=(4, 20))
        rows = bank.copy()
        expected = [apply_beam(rows[b], cfg)[1] for b in range(4)]
        _, counts = apply_beam_batch(bank, cfg)
        assert counts.tolist() == expected
        assert np.array_equal(bank, rows)

    def test_logadd_fold_bit_identical(self, rng):
        la_fold, la_serial = LogAddTable(), LogAddTable()
        values = rng.normal(scale=40.0, size=(64, 5))
        values[3] = -np.inf
        values[7, 1:] = -np.inf
        folded = la_fold.logadd_fold(values)
        serial = np.array([la_serial.logadd_many(v) for v in values])
        assert np.array_equal(folded, serial)
        assert la_fold.reads == la_serial.reads

    def test_score_pairs_matches_score_frame(self, small_pool, rng):
        obs = rng.normal(size=(3, small_pool.dim))
        pair_rows = np.array([0, 0, 1, 2, 2, 2])
        pair_senones = np.array([1, 5, 2, 0, 7, 23])
        pooled = small_pool.score_pairs(obs, pair_rows, pair_senones)
        for p, (b, s) in enumerate(zip(pair_rows, pair_senones)):
            assert pooled[p] == small_pool.score_frame(obs[b])[s]

    def test_score_frames_blocked_identical(self, small_pool, rng):
        frames = rng.normal(size=(11, small_pool.dim))
        full = small_pool.score_frames(frames, block_frames=11)
        blocked = small_pool.score_frames(frames, block_frames=2)
        assert np.array_equal(full, blocked)


class TestObsBankScratch:
    """``LaneBank.step`` must reuse its observation-bank scratch.

    The hardware mode's narrow token banks previously paid a fresh
    ``astype`` allocation per frame to cast the gathered senone scores;
    the cast now lands in a preallocated buffer.  Pinned by buffer
    identity across steps — and the existing equivalence suite keeps
    the cast bit-exact."""

    def _bank(self, task, mode, num_lanes=2):
        from repro.runtime.batch import LaneBank

        rec = Recognizer.create(
            task.dictionary, task.pool, task.lm, task.tying, mode=mode
        )
        batch = rec.as_batch()
        batch._reset_accounting()
        bank = LaneBank(batch, num_lanes)
        for lane, utt in enumerate(task.corpus.test[:num_lanes]):
            bank.admit(lane, lane, batch._validate_features(lane, utt.features))
        return bank

    def test_hardware_cast_scratch_reused_across_steps(self, task):
        bank = self._bank(task, "hardware")
        assert bank._obs_cast is not None
        assert bank._obs_cast.dtype == bank._dtype != np.float64
        bank_ptr = bank._obs_bank.ctypes.data
        cast_ptr = bank._obs_cast.ctypes.data
        for _ in range(5):
            bank.step()
            assert bank._obs_bank.ctypes.data == bank_ptr
            assert bank._obs_cast.ctypes.data == cast_ptr

    def test_reference_mode_needs_no_cast_scratch(self, task):
        bank = self._bank(task, "reference")
        assert bank._obs_cast is None
        bank_ptr = bank._obs_bank.ctypes.data
        for _ in range(3):
            bank.step()
            assert bank._obs_bank.ctypes.data == bank_ptr

    def test_compact_rebuilds_scratch_at_new_width(self, task):
        bank = self._bank(task, "hardware", num_lanes=3)
        bank.cancel(2)  # free a lane so compact() has something to drop
        n = bank.compact()
        assert n == 2
        assert bank._obs_bank.shape[0] == 2
        assert bank._obs_cast is not None
        assert bank._obs_cast.shape[0] == 2
        bank.step()  # still steps cleanly at the new width
