"""Tests for repro.decoder.streaming."""

import numpy as np
import pytest

from repro.decoder.recognizer import Recognizer
from repro.decoder.streaming import StreamingRecognizer


@pytest.fixture()
def recognizer(task):
    return Recognizer.create(
        task.dictionary, task.pool, task.lm, task.tying, mode="reference"
    )


class TestStreaming:
    def test_matches_batch_decode(self, task, recognizer):
        """Feeding frame by frame gives the batch decoder's answer."""
        utt = task.corpus.test[0]
        batch = recognizer.decode(utt.features).words
        streaming = StreamingRecognizer(recognizer, partial_interval=0)
        for frame in utt.features:
            if streaming.ended:
                break
            streaming.feed(frame)
        final = streaming.finalize()
        assert final is not None
        assert final.words == batch

    def test_partials_emitted(self, task, recognizer):
        utt = task.corpus.test[1]
        streaming = StreamingRecognizer(recognizer, partial_interval=10)
        partials = []
        for frame in utt.features:
            if streaming.ended:
                break
            event = streaming.feed(frame)
            if event.partial is not None:
                partials.append(event.partial)
        assert partials, "expected at least one partial hypothesis"
        final = streaming.finalize()
        # The last partial should be a prefix-ish of the final result:
        # at minimum, partials converge to the final hypothesis.
        assert final is not None

    def test_endpoint_fires_in_trailing_silence(self, task, recognizer):
        """Appending long silence triggers the endpoint detector."""
        utt = task.corpus.test[0]
        sil_senone = task.tying.ci_senone("SIL", 0)
        sil_mean = task.pool.means[sil_senone, 0]
        silence = np.tile(sil_mean, (60, 1))
        frames = np.vstack([utt.features, silence])
        streaming = StreamingRecognizer(
            recognizer, partial_interval=0, endpoint_silence_frames=25
        )
        fired_at = None
        for i, frame in enumerate(frames):
            event = streaming.feed(frame)
            if event.endpoint:
                fired_at = i
                break
        assert fired_at is not None, "endpoint never fired"
        assert fired_at >= utt.features.shape[0] - 1  # not during speech
        final = streaming.finalize()
        assert final is not None
        assert final.words == tuple(utt.words)

    def test_no_endpoint_before_speech(self, task, recognizer):
        """Leading silence alone must not endpoint (speech not seen)."""
        sil_senone = task.tying.ci_senone("SIL", 0)
        sil_mean = task.pool.means[sil_senone, 0]
        streaming = StreamingRecognizer(recognizer, endpoint_silence_frames=10)
        for _ in range(40):
            event = streaming.feed(sil_mean)
        assert not event.endpoint

    def test_feed_after_endpoint_rejected(self, task, recognizer):
        utt = task.corpus.test[0]
        sil_senone = task.tying.ci_senone("SIL", 0)
        sil_mean = task.pool.means[sil_senone, 0]
        frames = np.vstack([utt.features, np.tile(sil_mean, (80, 1))])
        streaming = StreamingRecognizer(recognizer, endpoint_silence_frames=20)
        for frame in frames:
            if streaming.feed(frame).endpoint:
                break
        with pytest.raises(RuntimeError):
            streaming.feed(frames[0])

    def test_reset_enables_next_utterance(self, task, recognizer):
        utt = task.corpus.test[2]
        streaming = StreamingRecognizer(recognizer, partial_interval=0)
        for frame in utt.features:
            streaming.feed(frame)
        first = streaming.finalize()
        streaming.reset()
        assert streaming.frames_fed == 0
        for frame in utt.features:
            streaming.feed(frame)
        second = streaming.finalize()
        assert first is not None and second is not None
        assert first.words == second.words

    def test_finalize_empty(self, recognizer):
        streaming = StreamingRecognizer(recognizer)
        assert streaming.finalize() is None

    def test_validation(self, recognizer):
        with pytest.raises(ValueError):
            StreamingRecognizer(recognizer, partial_interval=-1)
        with pytest.raises(ValueError):
            StreamingRecognizer(recognizer, endpoint_silence_frames=0)
