"""Tests for repro.core.scheduler."""

import numpy as np
import pytest

from repro.core.opunit import OpUnitSpec
from repro.core.scheduler import FrameSchedule, ScheduleConfig, SenoneScheduler


class TestScheduling:
    def test_even_split(self):
        scheduler = SenoneScheduler(num_units=2)
        schedule = scheduler.schedule_frame(np.arange(100))
        sizes = [s.size for s in schedule.unit_senones]
        assert sizes == [50, 50]
        assert schedule.imbalance == 0.0

    def test_odd_split_near_even(self):
        scheduler = SenoneScheduler(num_units=2)
        schedule = scheduler.schedule_frame(np.arange(101))
        sizes = sorted(s.size for s in schedule.unit_senones)
        assert sizes == [50, 51]
        assert schedule.imbalance < 0.05

    def test_compute_cycles_formula(self):
        spec = OpUnitSpec()
        scheduler = SenoneScheduler(num_units=2, spec=spec, components=8)
        schedule = scheduler.schedule_frame(np.arange(10))
        per = spec.cycles_per_senone(8)
        assert schedule.unit_compute_cycles == [5 * per, 5 * per]

    def test_contiguous_ids_one_transfer_each(self):
        scheduler = SenoneScheduler(num_units=2)
        schedule = scheduler.schedule_frame(np.arange(40))
        assert schedule.transfers == 2

    def test_scattered_ids_many_transfers(self):
        scheduler = SenoneScheduler(num_units=1)
        schedule = scheduler.schedule_frame(np.arange(0, 100, 5))
        assert schedule.transfers == 20

    def test_double_buffering_hides_fetch(self):
        buffered = SenoneScheduler(
            num_units=1, config=ScheduleConfig(double_buffered=True)
        )
        serial = SenoneScheduler(
            num_units=1, config=ScheduleConfig(double_buffered=False)
        )
        active = np.arange(200)
        fast = buffered.schedule_frame(active).critical_cycles
        slow = serial.schedule_frame(active).critical_cycles
        assert fast < slow

    def test_empty_frame(self):
        scheduler = SenoneScheduler(num_units=2)
        schedule = scheduler.schedule_frame(np.array([], dtype=np.int64))
        assert schedule.critical_cycles == 0
        assert schedule.transfers == 0

    def test_duplicates_removed(self):
        scheduler = SenoneScheduler(num_units=1)
        schedule = scheduler.schedule_frame(np.array([3, 3, 3, 7]))
        assert schedule.unit_senones[0].size == 2

    def test_two_units_halve_critical_path(self):
        one = SenoneScheduler(num_units=1)
        two = SenoneScheduler(num_units=2)
        active = np.arange(3000)
        c1 = one.schedule_frame(active).critical_cycles
        c2 = two.schedule_frame(active).critical_cycles
        assert c2 == pytest.approx(c1 / 2, rel=0.02)

    def test_accumulated_stats(self):
        scheduler = SenoneScheduler(num_units=2)
        for n in (10, 20, 30):
            scheduler.schedule_frame(np.arange(n))
        assert scheduler.frames == 3
        assert scheduler.critical_cycles_per_frame().shape == (3,)
        assert scheduler.mean_imbalance() < 0.1
        scheduler.reset()
        assert scheduler.frames == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SenoneScheduler(num_units=0)
        with pytest.raises(ValueError):
            ScheduleConfig(dma_setup_cycles=-1)
        with pytest.raises(ValueError):
            ScheduleConfig(dma_bytes_per_cycle=0)


class TestPaperOperatingPoint:
    def test_45_percent_active_on_two_units_fits_budget(self):
        """R3 with the DMA path in the loop: still real time."""
        scheduler = SenoneScheduler(num_units=2)
        active = np.arange(int(6000 * 0.45))
        schedule = scheduler.schedule_frame(active)
        assert schedule.critical_cycles <= 500_000

    def test_bandwidth_does_not_bottleneck(self):
        """At 32 B/cycle the DMA outruns the compute stream."""
        scheduler = SenoneScheduler(num_units=2)
        active = np.arange(3000)
        schedule = scheduler.schedule_frame(active)
        for compute, fetch in zip(
            schedule.unit_compute_cycles, schedule.unit_fetch_cycles
        ):
            assert fetch < compute
