"""Batched fast-GMM parity: every layer combination, every runtime.

The four-layer scheme (CDS / CI-selection / VQ / PDE) keeps per-lane
selection state — the CDS frame cache, per-lane CI margins against
each lane's own frame-best, per-lane work counters.  The batched
backend pools all lanes' demand into shared Gaussian passes, so the
thing to pin is that pooling NEVER leaks state or work between lanes:
for each of the 16 on/off layer combinations, batched and continuous
decode must match sequential fast decode word-for-word,
score-for-score (bit-exact) and counter-for-counter, for ragged
lengths, any batch size and any arrival order.
"""

import dataclasses
import itertools

import numpy as np
import pytest

from repro.decoder.fast_gmm import (
    FastGmmConfig,
    FastGmmModel,
    FastGmmScorer,
    FastGmmStats,
)
from repro.decoder.recognizer import Recognizer
from repro.hmm.senone import SenonePool
from repro.lexicon.triphone import SenoneTying
from repro.runtime import BatchFastGmmScorer

#: Ragged per-utterance frame lengths (test-corpus indices 0..3).
LENGTHS = [40, 25, 14, 7]

ALL_COMBOS = list(itertools.product([False, True], repeat=4))


def combo_id(combo) -> str:
    cds, ci, vq, pde = combo
    names = [
        name
        for on, name in zip(combo, ("cds", "ci", "vq", "pde"))
        if on
    ]
    return "+".join(names) if names else "baseline"


def make_config(combo) -> FastGmmConfig:
    cds, ci, vq, pde = combo
    return FastGmmConfig(
        cds_enabled=cds,
        ci_selection_enabled=ci,
        gaussian_selection_enabled=vq,
        pde_enabled=pde,
        # Thresholds chosen so each enabled layer actually fires on the
        # tiny task (skips happen, margins approximate, PDE abandons).
        cds_distance=30.0,
        ci_margin=6.0,
        gs_shortlist=2,
        pde_margin=8.0,
        pde_chunk=5,
    )


@pytest.fixture(scope="module")
def ragged_feats(task):
    return [
        u.features[:n] for u, n in zip(task.corpus.test, LENGTHS)
    ]


def _assert_lane_equal(seq, lane):
    assert lane.words == seq.words
    assert lane.score == seq.score  # bit-identical, not approx
    assert lane.frames == seq.frames
    assert lane.lattice_size == seq.lattice_size
    assert [f.__dict__ for f in lane.frame_stats] == [
        f.__dict__ for f in seq.frame_stats
    ]
    assert lane.scoring_stats.active_per_frame == seq.scoring_stats.active_per_frame
    # All four layers' work counters, per lane: frames skipped (CDS),
    # senones full/approximated (CI), Gaussians touched (VQ),
    # dimensions multiplied (PDE).
    assert isinstance(lane.fast_stats, FastGmmStats)
    assert lane.fast_stats == seq.fast_stats


class TestAblationParity:
    """16 layer combinations x batch sizes x arrival orders."""

    @pytest.mark.parametrize("combo", ALL_COMBOS, ids=combo_id)
    def test_layer_combination_matches_sequential(self, task, ragged_feats, combo):
        rec = Recognizer.create(
            task.dictionary,
            task.pool,
            task.lm,
            task.tying,
            mode="fast",
            fast_config=make_config(combo),
        )
        sequential = [rec.decode(f) for f in ragged_feats]
        batch = rec.as_batch()
        cont = rec.as_continuous()
        assert isinstance(batch.scorer, BatchFastGmmScorer)
        # The batched twin shares the sequential model (one codebook).
        assert batch.scorer.model is rec.scorer.model

        # Batch size 1 (degenerate) and 3 (ragged retirement mid-batch).
        _assert_lane_equal(sequential[0], batch.decode_batch([ragged_feats[0]])[0])
        for seq, lane in zip(sequential[:3], batch.decode_batch(ragged_feats[:3])):
            _assert_lane_equal(seq, lane)

        # Batch size 8: duplicated ragged lanes — identical features in
        # different lanes must produce identical outputs AND counters.
        eight = ragged_feats + ragged_feats
        for seq, lane in zip(sequential + sequential, batch.decode_batch(eight)):
            _assert_lane_equal(seq, lane)

        # Seeded-random arrival orders through the continuous runtime:
        # mid-decode refill reseeds per-lane scorer state.
        rng = np.random.default_rng(sum(combo) + 17)
        for max_lanes in (2, 3):
            order = rng.permutation(len(ragged_feats)).tolist()
            stream = cont.decode_stream(
                [ragged_feats[i] for i in order], max_lanes=max_lanes
            )
            for i, lane in zip(order, stream.results):
                _assert_lane_equal(sequential[i], lane)


class TestPooledBackendWithCdSenones:
    """Direct backend parity on a context-dependent senone space.

    The synthetic decode tasks are monophone (every senone is its own
    CI parent), so the full CI-selection machinery — per-lane frame
    bests, margin expansion, parent-score substitution — only
    degenerates there.  This drives the pooled backend head-to-head
    against per-lane sequential scorers on a CD tying where
    approximation really fires.
    """

    @pytest.fixture(scope="class")
    def cd_model(self):
        tying = SenoneTying(num_senones=1200)
        pool = SenonePool.random(
            1200, num_components=4, dim=13, rng=np.random.default_rng(5)
        )
        config = FastGmmConfig.all_layers(
            ci_margin=2.0,  # tight: approximation actually happens
            gs_shortlist=2,
            cds_distance=8.0,
            pde_margin=6.0,
            pde_chunk=5,
        )
        return FastGmmModel(pool, tying=tying, config=config)

    def test_pooled_matches_per_lane_sequential(self, cd_model):
        lanes = 3
        frames = 12
        rng = np.random.default_rng(99)
        sequential = [FastGmmScorer(cd_model.pool, model=cd_model) for _ in range(lanes)]
        batch = BatchFastGmmScorer(cd_model)
        for b in range(lanes):
            batch.admit_lane(b)
        # Per-lane frame sequences with stationary stretches (CDS food)
        # at DIFFERENT steps per lane, so skip masks diverge.
        obs = rng.normal(scale=3.0, size=(lanes, frames, cd_model.pool.dim))
        for b in range(lanes):
            for t in range(2 + b, frames, 4):
                obs[b, t] = obs[b, t - 1] + rng.normal(scale=0.01, size=13)
        for t in range(frames):
            pair_rows, pair_sen, per_lane = [], [], []
            for b in range(lanes):
                n = int(rng.integers(0, 60))
                sen = np.unique(rng.integers(0, 1200, size=n))
                per_lane.append(sen)
                pair_rows.append(np.full(sen.size, b, dtype=np.int64))
                pair_sen.append(sen)
            compact = batch.score_pairs(
                obs[:, t, :],
                np.concatenate(pair_rows),
                np.concatenate(pair_sen),
                lanes=np.arange(lanes),
            )
            offset = 0
            for b, sen in enumerate(per_lane):
                dense = sequential[b].score(t, obs[b, t], sen)
                got = compact[offset : offset + sen.size]
                offset += sen.size
                assert np.array_equal(got, dense[sen]), (t, b)
        for b in range(lanes):
            assert batch.lane_state(b).fast_stats == sequential[b].fast_stats
        # Prove the interesting layers actually fired somewhere.
        total = [batch.lane_state(b).fast_stats for b in range(lanes)]
        assert sum(s.senones_approximated for s in total) > 0
        assert sum(s.frames_skipped for s in total) > 0
        assert all(s.gaussians_evaluated < s.gaussians_possible for s in total)
        assert all(s.dims_evaluated < s.dims_possible for s in total)


class TestFastLaneLifecycle:
    @pytest.fixture(scope="class")
    def fast_pair(self, task):
        rec = Recognizer.create(
            task.dictionary,
            task.pool,
            task.lm,
            task.tying,
            mode="fast",
            fast_config=FastGmmConfig.all_layers(),
        )
        return rec, rec.as_continuous()

    def test_refill_resets_scorer_state(self, fast_pair, ragged_feats):
        """A reseeded lane must not inherit the CDS cache: decoding the
        SAME utterance through a refilled lane gives identical skip
        counters to a fresh sequential decode."""
        rec, cont = fast_pair
        seq = [rec.decode(f) for f in ragged_feats]
        stream = cont.decode_stream(ragged_feats, max_lanes=1)
        for s, lane in zip(seq, stream.results):
            _assert_lane_equal(s, lane)
        skips = [r.fast_stats.frames_skipped for r in stream.results]
        assert any(s > 0 for s in skips)  # CDS actually fired

    def test_retire_detaches_counters(self, fast_pair, ragged_feats):
        """Retired lanes' stats are frozen; the backend holds no state
        for them afterwards."""
        _, cont = fast_pair
        result = cont.decode_stream(ragged_feats, max_lanes=2)
        assert cont.scorer._lanes == {}  # all retired
        frames = [r.fast_stats.frames for r in result.results]
        assert frames == LENGTHS

    def test_work_counters_sum_like_sequential(self, fast_pair, ragged_feats):
        """Aggregate pooled work == sum of per-utterance sequential work."""
        rec, cont = fast_pair
        seq = [rec.decode(f) for f in ragged_feats]
        stream = cont.decode_stream(ragged_feats, max_lanes=4)
        for field in (f.name for f in dataclasses.fields(FastGmmStats)):
            total_seq = sum(getattr(r.fast_stats, field) for r in seq)
            total_stream = sum(getattr(r.fast_stats, field) for r in stream.results)
            assert total_stream == total_seq, field
