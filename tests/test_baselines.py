"""Tests for repro.baselines — the Section V comparison systems."""

import numpy as np
import pytest

from repro.baselines.mathew import MathewAccelerator, MathewConfig
from repro.baselines.nedevschi import (
    NedevschiDevice,
    merge_phone_groups,
    merged_pool,
)
from repro.baselines.software_cpu import SoftwareBaseline, SoftwareCpuCosts
from repro.core.soc import SpeechSoC
from repro.decoder.recognizer import Recognizer
from repro.decoder.word_decode import DecoderConfig
from repro.eval.wer import corpus_wer


class TestSoftwareBaseline:
    def test_requires_reference_mode(self, task):
        hw = Recognizer.create(task.dictionary, task.pool, task.lm, task.tying,
                               mode="hardware")
        with pytest.raises(ValueError):
            SoftwareBaseline(hw)

    def test_words_unchanged(self, task):
        rec = Recognizer.create(task.dictionary, task.pool, task.lm, task.tying,
                                mode="reference")
        baseline = SoftwareBaseline(rec)
        utt = task.corpus.test[0]
        assert baseline.decode(utt.features).words == tuple(utt.words)

    def test_cpu_costs_exceed_dedicated_units(self, task):
        """The architecture claim: software on the embedded core is far
        more expensive per frame than the dedicated units."""
        rec = Recognizer.create(task.dictionary, task.pool, task.lm, task.tying,
                                mode="reference")
        baseline = SoftwareBaseline(rec)
        report = baseline.decode(task.corpus.test[0].features)
        soc = SpeechSoC(task.dictionary, task.pool, task.lm, task.tying)
        soc_report = soc.decode_features(task.corpus.test[0].features)
        # Compare time per frame: CPU vs dedicated unit.
        cpu_s = report.realtime.mean_cycles_per_frame / SoftwareCpuCosts().clock_hz
        unit_s = (
            soc_report.op_unit_reports[0].mean_cycles_per_frame
            / soc.recognizer.op_units[0].spec.clock_hz
        )
        assert cpu_s > 2 * unit_s

    def test_energy_positive(self, task):
        rec = Recognizer.create(task.dictionary, task.pool, task.lm, task.tying,
                                mode="reference")
        report = SoftwareBaseline(rec).decode(task.corpus.test[0].features)
        assert report.energy_j > 0


class TestMathew:
    def _accelerator(self, task):
        rec = Recognizer.create(
            task.dictionary, task.pool, task.lm, task.tying,
            mode="hardware", config=DecoderConfig(use_feedback=False),
        )
        return MathewAccelerator(rec)

    def test_requires_no_feedback(self, task):
        rec = Recognizer.create(task.dictionary, task.pool, task.lm, task.tying,
                                mode="hardware")
        with pytest.raises(ValueError):
            MathewAccelerator(rec)

    def test_higher_power_than_ours(self, task):
        """Section V: 'our design has much less power consumption'."""
        accelerator = self._accelerator(task)
        utt = task.corpus.test[0]
        mathew = accelerator.decode(utt.features)
        ours = SpeechSoC(task.dictionary, task.pool, task.lm, task.tying)
        our_report = ours.decode_features(utt.features)
        assert (
            mathew.power.average_power_w
            > 3 * our_report.power.average_power_w
        )

    def test_higher_bandwidth_than_feedback_decode(self, task):
        accelerator = self._accelerator(task)
        utt = task.corpus.test[0]
        mathew = accelerator.decode(utt.features)
        ours = SpeechSoC(task.dictionary, task.pool, task.lm, task.tying)
        our_report = ours.decode_features(utt.features)
        assert mathew.bandwidth_gbps > our_report.mean_bandwidth_gbps

    def test_cpu_stalls_reported(self, task):
        report = self._accelerator(task).decode(task.corpus.test[0].features)
        assert report.cpu_stall_fraction > 0

    def test_words_still_correct(self, task):
        utt = task.corpus.test[0]
        report = self._accelerator(task).decode(utt.features)
        assert report.words == tuple(utt.words)


class TestNedevschi:
    def test_vocabulary_cap_enforced(self, task):
        from repro.workloads.wordgen import generate_words
        from repro.lexicon.dictionary import PronunciationDictionary

        big_words = generate_words(250, seed=77)
        big = PronunciationDictionary.from_pronunciations(big_words)
        with pytest.raises(ValueError):
            NedevschiDevice(big, task.pool, task.lm, task.tying,
                            task.corpus.phone_set)

    def test_phone_merge_under_30_groups(self, task):
        mapping = merge_phone_groups(task.corpus.phone_set, num_groups=28)
        groups = set(mapping.values())
        assert len(groups) < 30
        assert set(mapping) == set(task.corpus.phone_set.names())

    def test_merge_bounds_validated(self, task):
        with pytest.raises(ValueError):
            merge_phone_groups(task.corpus.phone_set, num_groups=1)
        with pytest.raises(ValueError):
            merge_phone_groups(task.corpus.phone_set, num_groups=51)

    def test_merged_pool_shares_parameters(self, task):
        pool = merged_pool(task.pool, task.tying, task.corpus.phone_set, 28)
        mapping = merge_phone_groups(task.corpus.phone_set, 28)
        merged = [(p, r) for p, r in mapping.items() if p != r]
        assert merged, "expected at least one merged phone"
        phone, rep = merged[0]
        src = task.tying.ci_senone(rep, 0)
        dst = task.tying.ci_senone(phone, 0)
        assert np.array_equal(pool.means[dst], pool.means[src])

    def test_reduced_phones_hurt_wer(self, task):
        """Section V: merged phones imply 'high error rate'."""
        device = NedevschiDevice(
            task.dictionary, task.pool, task.lm, task.tying,
            task.corpus.phone_set, num_phone_groups=12,
        )
        full = Recognizer.create(task.dictionary, task.pool, task.lm, task.tying,
                                 mode="reference")
        refs, dev_hyps, full_hyps = [], [], []
        for utt in task.corpus.test:
            refs.append(utt.words)
            dev_hyps.append(device.decode(utt.features).words)
            full_hyps.append(full.decode(utt.features).words)
        dev_wer = corpus_wer(refs, dev_hyps).wer
        full_wer = corpus_wer(refs, full_hyps).wer
        assert dev_wer > full_wer
