"""Trigram decoding: two-word LM histories through the decoder."""

import numpy as np
import pytest

from repro.decoder.recognizer import Recognizer
from repro.eval.wer import corpus_wer
from repro.lm.ngram import NGramModel


@pytest.fixture(scope="module")
def trigram_lm(task):
    lm = NGramModel(task.corpus.vocabulary, order=3)
    lm.train([utt.words for utt in task.corpus.train])
    return lm


class TestTrigramDecoding:
    def test_decodes_test_set(self, task, trigram_lm):
        rec = Recognizer.create(
            task.dictionary, task.pool, trigram_lm, task.tying, mode="reference"
        )
        refs, hyps = [], []
        for utt in task.corpus.test:
            refs.append(utt.words)
            hyps.append(rec.decode(utt.features).words)
        assert corpus_wer(refs, hyps).wer < 0.10

    def test_no_worse_than_bigram(self, task, trigram_lm):
        tri = Recognizer.create(
            task.dictionary, task.pool, trigram_lm, task.tying, mode="reference"
        )
        bi = Recognizer.create(
            task.dictionary, task.pool, task.lm, task.tying, mode="reference"
        )
        refs, tri_hyps, bi_hyps = [], [], []
        for utt in task.corpus.test:
            refs.append(utt.words)
            tri_hyps.append(tri.decode(utt.features).words)
            bi_hyps.append(bi.decode(utt.features).words)
        assert corpus_wer(refs, tri_hyps).wer <= corpus_wer(refs, bi_hyps).wer + 0.05

    def test_history_walk_skips_silence(self, task, trigram_lm):
        """Exit histories expose real words even across silence."""
        rec = Recognizer.create(
            task.dictionary, task.pool, trigram_lm, task.tying, mode="reference"
        )
        utt = task.corpus.test[1]
        result = rec.decode(utt.features)
        assert result.words == tuple(utt.words)
        stage = rec.word_stage
        lattice = stage.lattice
        # Walk every recorded exit: its LM history must never contain
        # a silence index and must have order-1 entries at most.
        net = rec.network
        for i in range(len(lattice)):
            history = stage._lm_history_of(lattice.exit(i))
            assert 1 <= len(history) <= 2
            for h in history:
                assert h != net.silence_word or h >= net.num_words

    def test_hardware_mode_with_trigram(self, task, trigram_lm):
        rec = Recognizer.create(
            task.dictionary, task.pool, trigram_lm, task.tying, mode="hardware"
        )
        utt = task.corpus.test[0]
        assert rec.decode(utt.features).words == tuple(utt.words)
