"""Tests for repro.lexicon.triphone — context expansion and tying."""

import pytest

from repro.lexicon.phones import default_phone_set
from repro.lexicon.triphone import SenoneTying, Triphone, word_to_triphones


class TestTriphone:
    def test_name_roundtrip(self):
        tri = Triphone(base="AE", left="K", right="T")
        assert tri.name == "K-AE+T"
        assert Triphone.parse(tri.name) == tri

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            Triphone.parse("AE")

    def test_word_expansion_contexts(self):
        tris = word_to_triphones(("K", "AE", "T"))
        assert [t.name for t in tris] == ["SIL-K+AE", "K-AE+T", "AE-T+SIL"]

    def test_custom_boundary_context(self):
        tris = word_to_triphones(("K",), left_context="AA", right_context="IY")
        assert tris[0].name == "AA-K+IY"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            word_to_triphones(())

    def test_single_phone_word(self):
        tris = word_to_triphones(("AA",))
        assert len(tris) == 1
        assert tris[0].left == "SIL" and tris[0].right == "SIL"


class TestSenoneTying:
    def test_paper_budget(self):
        tying = SenoneTying(num_senones=6000)
        assert tying.num_senones == 6000
        assert tying.ci_senones == 51 * 3

    def test_budget_below_ci_rejected(self):
        with pytest.raises(ValueError):
            SenoneTying(num_senones=100)

    def test_ci_senones_dense_block(self):
        tying = SenoneTying(num_senones=6000)
        ps = default_phone_set()
        ids = {tying.ci_senone(p.name, s) for p in ps for s in range(3)}
        assert ids == set(range(51 * 3))

    def test_cd_ids_above_ci_block(self):
        tying = SenoneTying(num_senones=6000)
        tri = Triphone(base="AE", left="K", right="T")
        for s in range(3):
            assert tying.senone(tri, s) >= tying.ci_senones

    def test_all_ids_in_budget(self):
        tying = SenoneTying(num_senones=6000)
        ps = default_phone_set()
        names = [p.name for p in ps]
        for base in names[:8]:
            for left in names[::7]:
                for right in names[::11]:
                    tri = Triphone(base=base, left=left, right=right)
                    for sid in tying.senone_ids(tri):
                        assert 0 <= sid < 6000

    def test_deterministic(self):
        a = SenoneTying(num_senones=6000)
        b = SenoneTying(num_senones=6000)
        tri = Triphone(base="AE", left="K", right="T")
        assert a.senone_ids(tri) == b.senone_ids(tri)

    def test_context_classes_drive_sharing(self):
        """Same context classes -> same senone (that's the tying)."""
        tying = SenoneTying(num_senones=6000)
        # K and T are both stops, IY and AA both vowels.
        a = Triphone(base="AE", left="K", right="IY")
        b = Triphone(base="AE", left="T", right="AA")
        assert tying.senone_ids(a) == tying.senone_ids(b)

    def test_different_state_different_senone(self):
        tying = SenoneTying(num_senones=6000)
        tri = Triphone(base="AE", left="K", right="T")
        ids = tying.senone_ids(tri)
        assert len(set(ids)) == 3

    def test_silence_is_context_independent(self):
        tying = SenoneTying(num_senones=6000)
        a = Triphone(base="SIL", left="K", right="T")
        b = Triphone(base="SIL", left="AA", right="IY")
        assert tying.senone_ids(a) == tying.senone_ids(b)
        assert tying.senone(a, 0) < tying.ci_senones

    def test_zero_cd_budget_collapses_to_ci(self):
        tying = SenoneTying(num_senones=51 * 3)
        tri = Triphone(base="AE", left="K", right="T")
        assert tying.senone(tri, 1) == tying.ci_senone("AE", 1)

    def test_ci_parent(self):
        tying = SenoneTying(num_senones=6000)
        tri = Triphone(base="AE", left="K", right="T")
        for s in range(3):
            cd = tying.senone(tri, s)
            assert tying.ci_parent(cd) == tying.ci_senone("AE", s)

    def test_ci_parent_of_ci_is_itself(self):
        tying = SenoneTying(num_senones=6000)
        assert tying.ci_parent(10) == 10

    def test_ci_parent_range_check(self):
        with pytest.raises(IndexError):
            SenoneTying(num_senones=6000).ci_parent(6000)

    def test_state_range_check(self):
        tying = SenoneTying(num_senones=6000)
        with pytest.raises(ValueError):
            tying.ci_senone("AA", 3)
