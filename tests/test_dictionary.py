"""Tests for repro.lexicon.dictionary — including the paper's 11 Mb sizing."""

import pytest

from repro.lexicon.dictionary import DictionaryLayout, PronunciationDictionary


class TestLayout:
    def test_default_slot_is_50_bits(self):
        """3 senone IDs x 13 bits + 11 link bits = 50 bits/triphone."""
        assert DictionaryLayout().triphone_slot_bits == 50

    def test_paper_wsj_arithmetic(self):
        """20k words x 9 triphones -> 9 Mb; word map -> 2 Mb (Section IV-B)."""
        layout = DictionaryLayout()
        assert layout.dictionary_bits(20_000 * 9) == 9_000_000
        assert layout.word_map_bits(20_000) == 2_000_000
        assert layout.total_bits(20_000, 180_000) == 11_000_000

    def test_rejects_bad_widths(self):
        with pytest.raises(ValueError):
            DictionaryLayout(senone_id_bits=0)

    def test_rejects_negative_counts(self):
        layout = DictionaryLayout()
        with pytest.raises(ValueError):
            layout.dictionary_bits(-1)
        with pytest.raises(ValueError):
            layout.word_map_bits(-1)

    def test_senone_id_width_covers_budget(self):
        """13 bits address 8192 senones — enough for the paper's 6000."""
        assert 2 ** DictionaryLayout().senone_id_bits >= 6000


class TestDictionary:
    def test_add_and_lookup(self):
        d = PronunciationDictionary()
        d.add("kaet", ("K", "AE", "T"))
        assert "kaet" in d
        assert d.pronunciation("kaet") == ("K", "AE", "T")

    def test_case_and_whitespace_normalised(self):
        d = PronunciationDictionary()
        d.add(" KaEt ", ("K", "AE", "T"))
        assert d.pronunciation("kaet") == ("K", "AE", "T")

    def test_unknown_word(self):
        with pytest.raises(KeyError):
            PronunciationDictionary().pronunciation("nope")

    def test_unknown_phone_rejected(self):
        with pytest.raises(KeyError):
            PronunciationDictionary().add("x", ("QQ",))

    def test_empty_word_or_pron_rejected(self):
        d = PronunciationDictionary()
        with pytest.raises(ValueError):
            d.add("", ("K",))
        with pytest.raises(ValueError):
            d.add("x", ())

    def test_add_from_spelling(self):
        d = PronunciationDictionary()
        d.add_from_spelling("kaet")
        assert d.pronunciation("kaet") == ("K", "AE", "T")

    def test_word_ids_sorted_and_stable(self):
        d = PronunciationDictionary()
        d.add("b", ("B", "AA"))
        d.add("a", ("AA",))
        assert d.words() == ("a", "b")
        assert d.word_id("a") == 0 and d.word_id("b") == 1
        d.add("aa", ("AA", "AA"))
        assert d.word_id("aa") == 1  # cache invalidated on add

    def test_word_id_unknown(self):
        with pytest.raises(KeyError):
            PronunciationDictionary().word_id("zzz")

    def test_triphone_counting(self):
        d = PronunciationDictionary()
        d.add("a", ("AA",))
        d.add("bc", ("B", "IY"))
        assert d.total_triphones() == 3
        assert d.average_triphones_per_word() == 1.5

    def test_storage_bits(self):
        d = PronunciationDictionary()
        d.add("a", ("AA",))
        d.add("bc", ("B", "IY"))
        bits = d.storage_bits()
        layout = d.layout
        assert bits["dictionary_bits"] == 3 * layout.triphone_slot_bits
        assert bits["word_map_bits"] == 2 * layout.ascii_record_bits
        assert bits["total_bits"] == bits["dictionary_bits"] + bits["word_map_bits"]

    def test_save_load_roundtrip(self, tmp_path):
        d = PronunciationDictionary()
        d.add("kaet", ("K", "AE", "T"))
        d.add("dig", ("D", "IH", "G"))
        path = tmp_path / "dict.txt"
        d.save(path)
        loaded = PronunciationDictionary.load(path)
        assert loaded.words() == d.words()
        assert loaded.pronunciation("dig") == ("D", "IH", "G")

    def test_load_skips_comments(self, tmp_path):
        path = tmp_path / "dict.txt"
        path.write_text("# comment\n\nkaet K AE T\n")
        loaded = PronunciationDictionary.load(path)
        assert len(loaded) == 1

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "dict.txt"
        path.write_text("loneword\n")
        with pytest.raises(ValueError):
            PronunciationDictionary.load(path)

    def test_from_pronunciations(self):
        d = PronunciationDictionary.from_pronunciations({"kaet": ("K", "AE", "T")})
        assert len(d) == 1
