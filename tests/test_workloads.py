"""Tests for repro.workloads — synthesizer, wordgen, corpus."""

import numpy as np
import pytest

from repro.lexicon.g2p import spelling_to_phones
from repro.lexicon.phones import default_phone_set
from repro.workloads.corpus import CorpusConfig, build_corpus, monophone_hmms
from repro.workloads.synthesizer import PhoneSynthesizer, SynthesisConfig
from repro.workloads.wordgen import generate_vocabulary, generate_words
from repro.lexicon.triphone import SenoneTying


class TestSynthesizer:
    def test_phone_duration(self):
        synth = PhoneSynthesizer()
        rng = np.random.default_rng(0)
        wav = synth.synthesize_phone("AA", 0.1, rng)
        assert wav.size == int(0.1 * synth.config.sample_rate)

    def test_silence_is_quiet(self):
        synth = PhoneSynthesizer()
        rng = np.random.default_rng(0)
        sil = synth.synthesize_phone("SIL", 0.1, rng)
        aa = synth.synthesize_phone("AA", 0.1, rng)
        assert np.abs(sil).max() < 0.05 * np.abs(aa).max()

    def test_signal_bounded(self):
        synth = PhoneSynthesizer()
        rng = np.random.default_rng(1)
        for phone in ("AA", "S", "K", "M"):
            wav = synth.synthesize_phone(phone, 0.1, rng)
            assert np.abs(wav).max() <= 1.0

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            PhoneSynthesizer().synthesize_phone("AA", 0.0, np.random.default_rng(0))

    def test_phone_string_concatenates(self):
        synth = PhoneSynthesizer()
        rng = np.random.default_rng(2)
        wav = synth.synthesize_phone_string(["K", "AE", "T"], rng)
        min_samples = 3 * synth.config.min_phone_s * synth.config.sample_rate
        assert wav.size >= min_samples

    def test_empty_phone_string_rejected(self):
        with pytest.raises(ValueError):
            PhoneSynthesizer().synthesize_phone_string([], np.random.default_rng(0))

    def test_sentence_has_edge_silence(self):
        cfg = SynthesisConfig(inter_word_pause_prob=0.0)
        synth = PhoneSynthesizer(config=cfg)
        rng = np.random.default_rng(3)
        wav = synth.synthesize_sentence([("K", "AE", "T")], rng)
        edge = int(cfg.edge_silence_s * cfg.sample_rate)
        assert np.abs(wav[: edge // 2]).max() < 0.05

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SynthesisConfig(sample_rate=0)
        with pytest.raises(ValueError):
            SynthesisConfig(min_phone_s=0.2, max_phone_s=0.1)
        with pytest.raises(ValueError):
            SynthesisConfig(inter_word_pause_prob=1.5)


class TestWordGen:
    def test_exact_count_distinct(self):
        words = generate_words(200, seed=1)
        assert len(words) == 200
        assert len({tuple(p) for p in words.values()}) == 200

    def test_deterministic(self):
        assert generate_words(50, seed=3) == generate_words(50, seed=3)

    def test_spellings_parse_back(self):
        words = generate_words(100, seed=2)
        for spelling, phones in words.items():
            assert spelling_to_phones(spelling) == phones

    def test_no_silence_phones(self):
        ps = default_phone_set()
        for phones in generate_words(100, seed=4).values():
            for p in phones:
                assert not ps.phone(p).is_silence

    def test_syllable_range_controls_length(self):
        short = generate_words(100, seed=5, min_syllables=1, max_syllables=1)
        long = generate_words(100, seed=5, min_syllables=3, max_syllables=5)
        mean_short = np.mean([len(p) for p in short.values()])
        mean_long = np.mean([len(p) for p in long.values()])
        assert mean_long > 2 * mean_short

    def test_vocabulary_sorted(self):
        vocab = generate_vocabulary(30, seed=6)
        assert vocab == sorted(vocab)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            generate_words(0)
        with pytest.raises(ValueError):
            generate_words(10, min_syllables=3, max_syllables=2)


class TestCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return build_corpus(
            CorpusConfig(
                vocabulary_size=12,
                train_sentences=10,
                test_sentences=4,
                min_sentence_words=1,
                max_sentence_words=3,
                seed=11,
            )
        )

    def test_sizes(self, corpus):
        assert len(corpus.dictionary) == 12
        assert len(corpus.train) == 10
        assert len(corpus.test) == 4

    def test_utterance_structure(self, corpus):
        utt = corpus.train[0]
        assert utt.features.shape[1] == 39
        assert utt.phones[0] == "SIL" and utt.phones[-1] == "SIL"
        assert utt.num_frames > len(utt.phones)  # alignable

    def test_transcript_phones_match_words(self, corpus):
        utt = corpus.train[0]
        non_sil = [p for p in utt.phones if p != "SIL"]
        expected = []
        for word in utt.words:
            expected.extend(corpus.dictionary.pronunciation(word))
        assert non_sil == expected

    def test_lm_trained_on_vocab(self, corpus):
        assert corpus.lm.vocabulary.size == 12
        assert corpus.lm.perplexity([corpus.train[0].words]) > 1.0

    def test_transcripts_helper(self, corpus):
        tying = SenoneTying(
            phone_set=corpus.phone_set, num_senones=51 * 3, states_per_hmm=3
        )
        hmms = monophone_hmms(corpus.phone_set, tying)
        transcripts = corpus.transcripts(hmms, subset="train")
        assert len(transcripts) == 10
        assert transcripts[0][0].name == "SIL"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CorpusConfig(vocabulary_size=1)
        with pytest.raises(ValueError):
            CorpusConfig(min_sentence_words=5, max_sentence_words=2)
