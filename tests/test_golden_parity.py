"""Golden-parity suite: every runtime vs COMMITTED sequential outputs.

``tests/golden/`` holds committed ``Recognizer.decode`` outputs (words,
bit-exact path scores, per-frame statistics, and in fast mode the
four-layer work counters) for command-task utterances in reference,
hardware and fast modes.  Every decoding runtime — sequential
:class:`Recognizer`, drained :class:`BatchRecognizer`, and the
continuous-batching :class:`ContinuousBatchRecognizer` — must
reproduce them exactly, so any future runtime change is automatically
checked against a fixed oracle rather than against a moving sequential
implementation.  Regenerate fixtures (intentional behaviour changes
only) with ``PYTHONPATH=src python tests/golden/generate_golden.py``.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.workloads.tasks import command_task

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

# The generator module is the single source of truth for the fixture
# recipe (modes, per-mode recognizer config); importing it here means
# the fixtures and this parity check cannot drift apart.
_spec = importlib.util.spec_from_file_location(
    "golden_generate", GOLDEN_DIR / "generate_golden.py"
)
golden_generate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(golden_generate)

MODES = golden_generate.MODES


@pytest.fixture(scope="module")
def golden_task():
    """The benchmark command task the fixtures were generated from."""
    return command_task(seed=19)


def _load(mode: str) -> dict:
    return json.loads((GOLDEN_DIR / f"command_{mode}.json").read_text())


@pytest.fixture(scope="module", params=MODES)
def golden(request, golden_task):
    fixture = _load(request.param)
    rec = golden_generate.make_recognizer(request.param, golden_task)
    feats = [
        golden_task.corpus.test[u["index"]].features for u in fixture["utterances"]
    ]
    return rec, fixture, feats


def _assert_matches_golden(result, expected):
    assert result.words == tuple(expected["words"])
    assert result.frames == expected["frames"]
    # Bit-exact score comparison through the committed hex encoding.
    assert result.score == float.fromhex(expected["score_hex"])
    assert result.lattice_size == expected["lattice_size"]
    assert [s.active_states for s in result.frame_stats] == expected["active_states"]
    assert [s.requested_senones for s in result.frame_stats] == (
        expected["requested_senones"]
    )
    assert [s.word_exits for s in result.frame_stats] == expected["word_exits"]
    assert result.scoring_stats.active_per_frame == expected["requested_senones"]
    if "fast_stats" in expected:
        # All four layers' work counters, per utterance.
        assert result.fast_stats is not None
        actual = {k: getattr(result.fast_stats, k) for k in expected["fast_stats"]}
        assert actual == expected["fast_stats"]


class TestGoldenFixtures:
    def test_fixture_files_are_committed(self):
        for mode in MODES:
            assert (GOLDEN_DIR / f"command_{mode}.json").exists()

    def test_fixture_lengths_are_ragged(self):
        """The fixtures must keep exercising ragged retirement."""
        for mode in MODES:
            frames = [u["frames"] for u in _load(mode)["utterances"]]
            assert len(frames) >= 4
            assert max(frames) >= 2 * min(frames)

    def test_fast_fixture_pins_layer_savings(self):
        """The committed fast fixture must show every counter live."""
        for u in _load("fast")["utterances"]:
            fs = u["fast_stats"]
            assert fs["frames"] == u["frames"]
            assert 0 < fs["frames_skipped"] < fs["frames"]
            assert 0 < fs["gaussians_evaluated"] < fs["gaussians_possible"]
            assert 0 < fs["dims_evaluated"] < fs["dims_possible"]


class TestSequentialGolden:
    def test_sequential_decode_matches_golden(self, golden):
        rec, fixture, feats = golden
        for expected, f in zip(fixture["utterances"], feats):
            _assert_matches_golden(rec.decode(f), expected)


class TestBatchGolden:
    def test_drained_batch_matches_golden(self, golden):
        rec, fixture, feats = golden
        result = rec.as_batch().decode_batch(feats)
        assert len(result) == len(feats)
        for expected, lane in zip(fixture["utterances"], result):
            _assert_matches_golden(lane, expected)


class TestBlasGolden:
    """The ``exact=False`` matmul-form mode vs the REFERENCE fixtures.

    ``mode="blas"`` must reproduce the committed reference decode's
    words exactly, with path scores within the documented tolerance
    (:data:`~repro.decoder.scorer.BLAS_SCORE_ATOL`), in all three
    runtimes — the acceptance contract of the BLAS backend.
    """

    @pytest.fixture(scope="class")
    def blas_golden(self, golden_task):
        from repro.decoder.recognizer import Recognizer

        fixture = _load("reference")
        rec = Recognizer.create(
            golden_task.dictionary, golden_task.pool, golden_task.lm,
            golden_task.tying, mode="blas",
        )
        feats = [
            golden_task.corpus.test[u["index"]].features
            for u in fixture["utterances"]
        ]
        return rec, fixture, feats

    def _assert_blas_matches(self, result, expected):
        from repro.decoder.scorer import BLAS_SCORE_ATOL

        assert result.words == tuple(expected["words"])
        assert result.frames == expected["frames"]
        reference_score = float.fromhex(expected["score_hex"])
        assert abs(result.score - reference_score) <= BLAS_SCORE_ATOL

    def test_sequential_blas_matches_reference_golden(self, blas_golden):
        rec, fixture, feats = blas_golden
        for expected, f in zip(fixture["utterances"], feats):
            self._assert_blas_matches(rec.decode(f), expected)

    def test_batch_blas_matches_reference_golden(self, blas_golden):
        rec, fixture, feats = blas_golden
        result = rec.as_batch().decode_batch(feats)
        for expected, lane in zip(fixture["utterances"], result):
            self._assert_blas_matches(lane, expected)

    def test_continuous_blas_matches_reference_golden(self, blas_golden):
        rec, fixture, feats = blas_golden
        result = rec.as_continuous().decode_stream(feats, max_lanes=2)
        assert max(result.admit_steps) > 0  # refill actually happened
        for expected, lane in zip(fixture["utterances"], result):
            self._assert_blas_matches(lane, expected)


class TestCancellationGolden:
    """Early-retire (serving deadlines/cancellation) vs the fixtures.

    A lane cancelled MID-decode must not perturb any surviving lane's
    bit-exact output — the invariant the serving front door's deadline
    enforcement rests on.  Decodes every golden utterance alongside a
    victim lane that is cancelled partway through, in every golden
    mode (the fast mode exercises the scorer's per-lane state teardown
    on cancel), then checks each survivor against the committed
    fixture.
    """

    def _drive_with_cancellation(self, rec, feats, victim_feats, reseed=None):
        from repro.runtime.batch import LaneBank

        batch = rec.as_batch()
        batch._reset_accounting()
        bank = LaneBank(batch, len(feats) + 1)
        for lane, f in enumerate(feats):
            bank.admit(lane, lane, batch._validate_features(lane, f))
        victim_lane = len(feats)
        bank.admit(
            victim_lane, 900, batch._validate_features(victim_lane, victim_feats)
        )
        cancel_at = min(f.shape[0] for f in feats) // 2  # everyone mid-decode
        assert 0 < cancel_at < victim_feats.shape[0]
        results = {}
        cancelled = False
        while bank.any_active:
            if not cancelled and bank.steps == cancel_at:
                frames_done = bank.cancel(victim_lane)
                assert frames_done == cancel_at
                cancelled = True
                if reseed is not None:
                    bank.admit(
                        victim_lane,
                        901,
                        batch._validate_features(victim_lane, reseed),
                    )
            for lane in bank.step():
                utt = int(bank.lane_utt[lane])
                results[utt] = bank.retire(lane)
        assert cancelled
        return results

    def test_cancelled_lane_does_not_perturb_survivors(self, golden):
        rec, fixture, feats = golden
        results = self._drive_with_cancellation(rec, feats, feats[0])
        assert 900 not in results  # the victim never produced a result
        for utt, expected in enumerate(fixture["utterances"]):
            _assert_matches_golden(results[utt], expected)

    def test_reseeded_lane_after_cancel_matches_golden(self, golden):
        """A lane freed by cancellation and immediately re-admitted
        decodes its new utterance exactly as a sequential decode —
        no state from the cancelled occupant leaks through."""
        rec, fixture, feats = golden
        results = self._drive_with_cancellation(
            rec, feats, feats[0], reseed=feats[1]
        )
        for utt, expected in enumerate(fixture["utterances"]):
            _assert_matches_golden(results[utt], expected)
        # The reseeded utterance re-used feats[1]'s features, so it
        # must match that fixture bit for bit as well.
        _assert_matches_golden(results[901], fixture["utterances"][1])


class TestDictationGolden:
    """The tree-lexicon path vs COMMITTED dictation fixtures.

    ``dictation_reference.json`` pins sequential ``network="tree"``
    decodes of the scaled-down dictation task; the sequential, drained
    batch and continuous runtimes must all reproduce them bit for bit,
    so a regression in the banked tree kernel cannot hide behind
    "batch and sequential changed together".
    """

    @pytest.fixture(scope="class")
    def dictation_golden(self):
        fixture = json.loads(
            (GOLDEN_DIR / "dictation_reference.json").read_text()
        )
        task = golden_generate.make_dictation_task()
        rec = golden_generate.make_tree_recognizer(task)
        feats = [
            task.corpus.test[u["index"]].features for u in fixture["utterances"]
        ]
        return rec, fixture, feats

    def test_fixture_is_committed_and_ragged(self):
        fixture = json.loads(
            (GOLDEN_DIR / "dictation_reference.json").read_text()
        )
        assert fixture["network"] == "tree"
        assert fixture["sharing_factor"] >= 1.0
        frames = [u["frames"] for u in fixture["utterances"]]
        assert len(frames) >= 4
        assert max(frames) >= 2 * min(frames)

    def test_sequential_tree_matches_golden(self, dictation_golden):
        rec, fixture, feats = dictation_golden
        for expected, f in zip(fixture["utterances"], feats):
            _assert_matches_golden(rec.decode(f), expected)

    def test_drained_batch_tree_matches_golden(self, dictation_golden):
        rec, fixture, feats = dictation_golden
        result = rec.as_batch().decode_batch(feats)
        assert len(result) == len(feats)
        for expected, lane in zip(fixture["utterances"], result):
            _assert_matches_golden(lane, expected)

    def test_continuous_tree_matches_golden(self, dictation_golden):
        """Few lanes + the 163..560-frame spread forces refill."""
        rec, fixture, feats = dictation_golden
        result = rec.as_continuous().decode_stream(feats, max_lanes=2)
        assert max(result.admit_steps) > 0  # refill actually happened
        for expected, lane in zip(fixture["utterances"], result):
            _assert_matches_golden(lane, expected)


class TestContinuousGolden:
    def test_continuous_stream_matches_golden(self, golden):
        """Few lanes + ragged lengths forces mid-decode refill."""
        rec, fixture, feats = golden
        result = rec.as_continuous().decode_stream(feats, max_lanes=2)
        assert max(result.admit_steps) > 0  # refill actually happened
        for expected, lane in zip(fixture["utterances"], result):
            _assert_matches_golden(lane, expected)

    def test_continuous_reversed_arrival_matches_golden(self, golden):
        """Admission order must not change any utterance's output."""
        rec, fixture, feats = golden
        result = rec.as_continuous().decode_stream(feats[::-1], max_lanes=3)
        for expected, lane in zip(fixture["utterances"][::-1], result):
            _assert_matches_golden(lane, expected)
