"""Quantized-table parity suite for reduced-precision blas scoring.

``SenonePool.blas_tables(precision=...)`` offers three storage
formats for the matmul-form tables: ``"float64"`` (the original exact
rounding), ``"float32"`` (half the table bandwidth) and ``"int8"``
(per-row symmetric codes, ~1/7 the bytes).  The contracts pinned here:

* ``float32`` decodes are WORD-identical to the float64 blas backend
  on the command task across batch sizes 1-8 and ragged continuous
  arrivals, with path scores within
  :data:`~repro.decoder.scorer.FLOAT32_SCORE_ATOL`;
* ``int8`` path-score drift stays within the documented
  :data:`~repro.decoder.scorer.INT8_SCORE_ATOL` (its WER drift is
  REPORTED by ``benchmarks/bench_quant_tables.py``);
* the int8 quantizer round-trips within half a grid step per entry;
* ``SenonePool.table_bytes`` is an exact analytic account of the
  built tables, and int8 comes in under half the float64 footprint;
* ``TestQuantGolden`` replays the committed reference fixtures at
  batch 8 — the acceptance gate of the precision axis.

Speed is proven in ``benchmarks/bench_quant_tables.py``; this module
only pins correctness.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.decoder.recognizer import Recognizer, validate_precision
from repro.decoder.scorer import FLOAT32_SCORE_ATOL, INT8_SCORE_ATOL, BlasScorer
from repro.hmm.senone import BLAS_PRECISIONS, SenonePool
from repro.quant.fixed_point import (
    INT8_LEVELS,
    dequantize_rows_int8,
    quantize_rows_int8,
)
from repro.runtime.batch import BatchRecognizer
from repro.serve import Server
from repro.workloads.tasks import command_task

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


@pytest.fixture(scope="module")
def golden_task():
    """The benchmark command task the golden fixtures come from."""
    return command_task(seed=19)


@pytest.fixture(scope="module")
def recs(golden_task):
    def make(precision):
        return Recognizer.create(
            golden_task.dictionary, golden_task.pool, golden_task.lm,
            golden_task.tying, mode="blas", precision=precision,
        )

    return {p: make(p) for p in BLAS_PRECISIONS}


@pytest.fixture(scope="module")
def feats(golden_task):
    return [u.features for u in golden_task.corpus.test]


@pytest.fixture(scope="module")
def oracle(recs, feats):
    """Sequential float64 blas decodes — the baseline every reduced
    precision answers to."""
    return [recs["float64"].decode(f) for f in feats]


def _assert_quant_parity(result, baseline, atol):
    assert result.words == baseline.words
    assert result.frames == baseline.frames
    assert abs(result.score - baseline.score) <= atol


class TestFloat32Parity:
    def test_sequential_word_identical(self, recs, feats, oracle):
        for f, base in zip(feats, oracle):
            _assert_quant_parity(
                recs["float32"].decode(f), base, FLOAT32_SCORE_ATOL
            )

    @pytest.mark.parametrize("batch_size", [1, 2, 4, 8])
    def test_batch_sizes_word_identical(self, recs, feats, oracle, batch_size):
        batch = recs["float32"].as_batch()
        results = []
        for start in range(0, len(feats), batch_size):
            results.extend(batch.decode_batch(feats[start : start + batch_size]))
        for lane, base in zip(results, oracle):
            _assert_quant_parity(lane, base, FLOAT32_SCORE_ATOL)

    def test_continuous_ragged_arrivals_word_identical(
        self, recs, feats, oracle
    ):
        result = recs["float32"].as_continuous().decode_stream(
            feats, max_lanes=2
        )
        assert max(result.admit_steps) > 0  # refill actually happened
        for lane, base in zip(result, oracle):
            _assert_quant_parity(lane, base, FLOAT32_SCORE_ATOL)

    def test_continuous_reversed_arrival_word_identical(
        self, recs, feats, oracle
    ):
        result = recs["float32"].as_continuous().decode_stream(
            feats[::-1], max_lanes=3
        )
        for lane, base in zip(result, oracle[::-1]):
            _assert_quant_parity(lane, base, FLOAT32_SCORE_ATOL)


class TestInt8Drift:
    """int8 drift on the golden acceptance utterances — the set where
    word outputs are empirically identical, so best-path score drift
    against the float64 blas baseline is directly comparable (the
    broader test corpus flips a few words; that shows up as WER drift
    in ``benchmarks/bench_quant_tables.py``, not here)."""

    @pytest.fixture(scope="class")
    def golden_pairs(self, golden_task, recs):
        fixture = json.loads(
            (GOLDEN_DIR / "command_reference.json").read_text()
        )
        feats = [
            golden_task.corpus.test[u["index"]].features
            for u in fixture["utterances"]
        ]
        return feats, [recs["float64"].decode(f) for f in feats]

    def test_sequential_drift_bounded(self, recs, golden_pairs):
        feats, baselines = golden_pairs
        for f, base in zip(feats, baselines):
            _assert_quant_parity(recs["int8"].decode(f), base, INT8_SCORE_ATOL)

    def test_batch_drift_bounded(self, recs, golden_pairs):
        feats, baselines = golden_pairs
        result = recs["int8"].as_batch().decode_batch(feats)
        for lane, base in zip(result, baselines):
            _assert_quant_parity(lane, base, INT8_SCORE_ATOL)


class TestInt8RoundTrip:
    def _table(self, rng, rows=32, cols=39):
        # Mixed-magnitude rows, like precision tables: some dims huge.
        table = rng.standard_normal((rows, cols))
        table[:, 0] *= 100.0
        return table

    def test_round_trip_error_within_half_grid_step(self, rng):
        table = self._table(rng)
        codes, scales = quantize_rows_int8(table)
        back = dequantize_rows_int8(codes, scales)
        # Per-entry error <= scale/2 (+ float32 scale rounding slack).
        bound = scales.astype(np.float64) / 2 * 1.001 + 1e-12
        assert np.all(np.abs(back - table) <= bound)

    def test_codes_and_scales_dtypes(self, rng):
        codes, scales = quantize_rows_int8(self._table(rng))
        assert codes.dtype == np.int8
        assert scales.dtype == np.float32
        assert scales.shape == (codes.shape[0], 1)
        assert dequantize_rows_int8(codes, scales).dtype == np.float32

    def test_codes_span_symmetric_range(self, rng):
        codes, _ = quantize_rows_int8(self._table(rng))
        assert codes.min() >= -INT8_LEVELS
        assert codes.max() <= INT8_LEVELS
        # The row peak always lands on the full-scale code.
        assert np.all(np.abs(codes).max(axis=1) == INT8_LEVELS)

    def test_negation_symmetry(self, rng):
        table = self._table(rng)
        codes_pos, scales_pos = quantize_rows_int8(table)
        codes_neg, scales_neg = quantize_rows_int8(-table)
        assert np.array_equal(scales_pos, scales_neg)
        assert np.array_equal(codes_neg, -codes_pos)

    def test_all_zero_rows_are_exact(self, rng):
        table = self._table(rng)
        table[3] = 0.0
        codes, scales = quantize_rows_int8(table)
        assert scales[3, 0] == 0.0
        assert np.all(codes[3] == 0)
        assert np.all(dequantize_rows_int8(codes, scales)[3] == 0.0)

    def test_dequantize_into_preallocated_out(self, rng):
        codes, scales = quantize_rows_int8(self._table(rng))
        out = np.empty(codes.shape, dtype=np.float32)
        back = dequantize_rows_int8(codes, scales, out=out)
        assert back is out
        assert np.array_equal(back, dequantize_rows_int8(codes, scales))


class TestTableBytes:
    @pytest.fixture(scope="class")
    def pool(self):
        return SenonePool.random(
            48, num_components=4, dim=13, rng=np.random.default_rng(11)
        )

    @pytest.mark.parametrize("precision", BLAS_PRECISIONS)
    def test_analytic_matches_built_tables(self, pool, precision):
        assert pool.table_bytes(precision) == pool.blas_tables(precision).table_bytes

    def test_int8_under_half_the_float64_footprint(self, pool):
        assert pool.table_bytes("int8") <= 0.5 * pool.table_bytes("float64")

    def test_float32_exactly_half_the_float64_footprint(self, pool):
        assert pool.table_bytes("float32") * 2 == pool.table_bytes("float64")

    def test_unknown_precision_rejected(self, pool):
        with pytest.raises(ValueError, match="float64"):
            pool.table_bytes("float16")
        with pytest.raises(ValueError, match="float64"):
            pool.blas_tables("float16")


class TestPrecisionValidation:
    def test_unknown_precision_names_supported(self):
        with pytest.raises(ValueError, match="int8"):
            validate_precision("blas", "bfloat16")

    @pytest.mark.parametrize("mode", ["reference", "hardware", "fast"])
    def test_reduced_precision_requires_blas(self, mode):
        with pytest.raises(ValueError, match="blas"):
            validate_precision(mode, "float32")

    def test_float64_allowed_everywhere(self):
        for mode in ("reference", "hardware", "fast", "blas"):
            validate_precision(mode, "float64")

    def test_recognizer_rejects_non_blas_precision(self, golden_task):
        with pytest.raises(ValueError, match="blas"):
            Recognizer.create(
                golden_task.dictionary, golden_task.pool, golden_task.lm,
                golden_task.tying, mode="reference", precision="int8",
            )

    def test_blas_scorer_rejects_unknown_precision(self):
        pool = SenonePool.random(
            8, num_components=2, dim=5, rng=np.random.default_rng(0)
        )
        with pytest.raises(ValueError, match="float32"):
            BlasScorer(pool, precision="fp8")


class TestPrecisionThreading:
    """The knob must survive every twin construction on the way to
    the serving front door."""

    def test_batch_twin_keeps_precision(self, recs):
        twin = BatchRecognizer.from_recognizer(recs["float32"])
        assert twin.precision == "float32"
        assert twin.scorer.precision == "float32"

    def test_continuous_twin_keeps_precision(self, recs):
        cont = recs["int8"].as_continuous()
        assert cont.precision == "int8"
        assert cont.scorer.precision == "int8"

    def test_server_metrics_report_precision_and_footprint(self, recs):
        server = Server(recs["float32"])
        m = server.metrics()
        assert m.scoring_mode == "blas"
        assert m.scoring_precision == "float32"
        assert m.model_table_bytes == recs["float32"].pool.table_bytes("float32")

    def test_server_metrics_non_blas_reports_storage_bytes(self, golden_task):
        rec = Recognizer.create(
            golden_task.dictionary, golden_task.pool, golden_task.lm,
            golden_task.tying, mode="reference",
        )
        m = Server(rec).metrics()
        assert m.scoring_mode == "reference"
        assert m.scoring_precision == "float64"
        assert m.model_table_bytes == int(
            golden_task.pool.storage_bytes(rec.storage_format)
        )


class TestQuantGolden:
    """Reduced precisions vs the COMMITTED reference fixtures at
    batch 8 — the acceptance gate: float32 must reproduce the golden
    words exactly; int8 must stay within its documented drift."""

    @pytest.fixture(scope="class")
    def fixture(self):
        path = GOLDEN_DIR / "command_reference.json"
        return json.loads(path.read_text())

    @pytest.fixture(scope="class")
    def golden_feats(self, golden_task, fixture):
        return [
            golden_task.corpus.test[u["index"]].features
            for u in fixture["utterances"]
        ]

    @pytest.mark.parametrize(
        "precision, atol",
        [("float32", FLOAT32_SCORE_ATOL), ("int8", INT8_SCORE_ATOL)],
    )
    def test_batch8_matches_reference_fixture(
        self, recs, fixture, golden_feats, precision, atol
    ):
        batch = recs[precision].as_batch()
        result = batch.decode_batch(golden_feats)  # one bank, batch 8 lanes
        assert len(result) == len(fixture["utterances"])
        for lane, expected in zip(result, fixture["utterances"]):
            assert lane.words == tuple(expected["words"])
            assert lane.frames == expected["frames"]
            reference_score = float.fromhex(expected["score_hex"])
            assert abs(lane.score - reference_score) <= atol
