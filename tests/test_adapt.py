"""Tests for repro.hmm.adapt — diagonal MLLR mean adaptation."""

import numpy as np
import pytest

from repro.decoder.recognizer import Recognizer
from repro.eval.wer import corpus_wer
from repro.hmm.adapt import MeanTransform, align_and_adapt, estimate_transform
from repro.hmm.senone import SenonePool


class TestMeanTransform:
    def test_identity(self, small_pool):
        transform = MeanTransform.identity(small_pool.dim)
        adapted = transform.apply(small_pool)
        assert np.allclose(adapted.means, small_pool.means)

    def test_apply_moves_means_only(self, small_pool):
        transform = MeanTransform(
            scale=np.full(small_pool.dim, 2.0),
            offset=np.ones(small_pool.dim),
        )
        adapted = transform.apply(small_pool)
        assert np.allclose(adapted.means, 2.0 * small_pool.means + 1.0)
        assert np.allclose(adapted.variances, small_pool.variances)
        assert np.allclose(adapted.weights, small_pool.weights)

    def test_dim_mismatch_rejected(self, small_pool):
        transform = MeanTransform.identity(small_pool.dim + 1)
        with pytest.raises(ValueError):
            transform.apply(small_pool)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            MeanTransform(scale=np.ones(3), offset=np.ones(4))


class TestEstimate:
    def test_recovers_planted_transform(self, rng):
        dim = 6
        true_scale = rng.uniform(0.8, 1.2, size=dim)
        true_offset = rng.normal(0, 0.5, size=dim)
        means = rng.normal(size=(500, dim))
        observations = true_scale * means + true_offset + rng.normal(
            0, 0.01, size=(500, dim)
        )
        transform = estimate_transform(observations, means)
        assert np.allclose(transform.scale, true_scale, atol=0.05)
        assert np.allclose(transform.offset, true_offset, atol=0.05)

    def test_identity_for_matched_data(self, rng):
        means = rng.normal(size=(300, 4))
        transform = estimate_transform(means + rng.normal(0, 1e-3, (300, 4)), means)
        assert np.allclose(transform.scale, 1.0, atol=0.02)
        assert np.allclose(transform.offset, 0.0, atol=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_transform(np.zeros((5, 3)), np.zeros((5, 4)))
        with pytest.raises(ValueError):
            estimate_transform(np.zeros((1, 3)), np.zeros((1, 3)))


class TestEndToEndAdaptation:
    def test_adaptation_recovers_shifted_speaker(self, task):
        """A constant feature shift is undone by supervised MLLR."""
        shift = 1.6  # a strong speaker/channel offset, in feature units
        self_lp, fwd_lp = task.topology.chain_log_probs()

        def shifted(utt):
            return utt.features + shift

        # Adaptation data: the first test utterances with known text.
        adapt_utts = [shifted(u) for u in task.corpus.test[:4]]
        chains = []
        for utt in task.corpus.test[:4]:
            chain: list[int] = []
            for phone in utt.phones:
                for s in range(task.tying.states_per_hmm):
                    chain.append(task.tying.ci_senone(phone, s))
            chains.append(chain)
        adapted_pool, transform = align_and_adapt(
            task.pool, adapt_utts, chains, self_lp, fwd_lp
        )
        # The offset estimate should move toward the planted shift for
        # the static cepstra (deltas are shift-invariant here since the
        # shift is constant over time -- their offsets stay ~0).
        assert transform.offset[:13].mean() > 0.5 * shift

        base = Recognizer.create(
            task.dictionary, task.pool, task.lm, task.tying, mode="reference"
        )
        adapted = Recognizer.create(
            task.dictionary, adapted_pool, task.lm, task.tying, mode="reference"
        )
        refs, base_hyps, adapted_hyps = [], [], []
        for utt in task.corpus.test[4:]:
            features = shifted(utt)
            refs.append(utt.words)
            base_hyps.append(base.decode(features).words)
            adapted_hyps.append(adapted.decode(features).words)
        base_wer = corpus_wer(refs, base_hyps).wer
        adapted_wer = corpus_wer(refs, adapted_hyps).wer
        assert adapted_wer <= base_wer
        # And the adapted system should work well in absolute terms.
        assert adapted_wer < 0.25

    def test_validation(self, task):
        self_lp, fwd_lp = task.topology.chain_log_probs()
        with pytest.raises(ValueError):
            align_and_adapt(task.pool, [], [], self_lp, fwd_lp)
        with pytest.raises(ValueError):
            align_and_adapt(
                task.pool, [np.zeros((10, 39))], [], self_lp, fwd_lp
            )
