"""Tests for repro.lexicon.phones."""

import pytest

from repro.lexicon.phones import PhoneClass, PhoneSet, SILENCE, default_phone_set


class TestInventory:
    def test_paper_phone_count(self):
        """Section II: 'there are 51 phones in English language'."""
        assert len(default_phone_set()) == 51

    def test_indices_dense_and_stable(self):
        ps = default_phone_set()
        indices = [p.index for p in ps]
        assert indices == list(range(51))

    def test_lookup_by_name_and_index(self):
        ps = default_phone_set()
        phone = ps.phone("AA")
        assert ps.by_index(phone.index).name == "AA"

    def test_unknown_phone(self):
        with pytest.raises(KeyError):
            default_phone_set().phone("QQ")

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            default_phone_set().by_index(51)

    def test_silence(self):
        ps = default_phone_set()
        assert ps.silence.name == SILENCE
        assert ps.silence.is_silence
        assert not ps.phone("AA").is_silence

    def test_non_silence_excludes_all_silence_class(self):
        ps = default_phone_set()
        for phone in ps.non_silence():
            assert phone.phone_class is not PhoneClass.SILENCE

    def test_contains(self):
        ps = default_phone_set()
        assert "K" in ps
        assert "XX" not in ps

    def test_class_index_dense(self):
        ps = default_phone_set()
        assert 0 <= ps.class_index("AA") < len(PhoneClass)

    def test_every_class_populated(self):
        ps = default_phone_set()
        present = {p.phone_class for p in ps}
        assert present == set(PhoneClass)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            PhoneSet((("A", PhoneClass.VOWEL), ("A", PhoneClass.STOP)))
