"""The fast examples must run end to end (they are documentation)."""

import runpy
import sys
from pathlib import Path

import pytest

_EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, capsys) -> str:
    runpy.run_path(str(_EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.parametrize(
    "script, expectations",
    [
        ("quickstart.py", ["WER", "active senones"]),
        ("hardware_trace.py", ["logadd SRAM: 512 bytes", "add&compare", "senone[0]"]),
        (
            "streaming_demo.py",
            ["partial:", "endpoint", "final:", "correct",
             "deadline miss -> typed timeout", "server metrics:"],
        ),
        ("model_persistence.py", ["round trip", "identical"]),
        (
            "wire_demo.py",
            ["wire decode bit-identical to sequential: True",
             "typed rejection", "badge still admitted",
             "partial updates", "server metrics over the wire:"],
        ),
        (
            "trace_demo.py",
            ["client-minted trace id:", "wire.receive", "decode.scoring",
             "decode depth:", "repro_serve_completed_total",
             "repro_serve_worker_alive"],
        ),
        (
            "batch_throughput.py",
            ["speedup:", "outputs identical: True",
             "continuous outputs identical: True"],
        ),
    ],
)
def test_example_runs(script, expectations, capsys):
    out = _run(script, capsys)
    for needle in expectations:
        assert needle in out, f"{script}: {needle!r} missing from output"
