"""Tests for repro.lm.arpa — ARPA-format LM serialization."""

import numpy as np
import pytest

from repro.lm.arpa import ArpaModel, load_arpa, save_arpa
from repro.lm.ngram import NGramModel
from repro.lm.vocabulary import Vocabulary


@pytest.fixture()
def trained():
    vocab = Vocabulary(["the", "cat", "dog", "runs"])
    lm = NGramModel(vocab, order=2)
    lm.train(
        [["the", "cat", "runs"], ["the", "dog", "runs"], ["the", "cat", "runs"]]
    )
    return vocab, lm


class TestRoundtrip:
    def test_probabilities_preserved(self, trained, tmp_path):
        vocab, lm = trained
        path = tmp_path / "model.arpa"
        save_arpa(lm, path)
        loaded = load_arpa(path, vocab)
        for w in range(vocab.size):
            for history in [(), (vocab.word_id("the"),), (vocab.bos_id,)]:
                assert loaded.log_prob(w, history) == pytest.approx(
                    lm.log_prob(w, history), abs=1e-4
                )

    def test_row_queries_match(self, trained, tmp_path):
        vocab, lm = trained
        path = tmp_path / "model.arpa"
        save_arpa(lm, path)
        loaded = load_arpa(path, vocab)
        history = (vocab.word_id("the"),)
        assert np.allclose(
            loaded.log_prob_row(history), lm.log_prob_row(history), atol=1e-4
        )

    def test_eos_preserved(self, trained, tmp_path):
        vocab, lm = trained
        path = tmp_path / "model.arpa"
        save_arpa(lm, path)
        loaded = load_arpa(path, vocab)
        history = (vocab.word_id("runs"),)
        assert loaded.eos_log_prob(history) == pytest.approx(
            lm.eos_log_prob(history), abs=1e-4
        )

    def test_vocabulary_rebuilt_from_file(self, trained, tmp_path):
        vocab, lm = trained
        path = tmp_path / "model.arpa"
        save_arpa(lm, path)
        loaded = load_arpa(path)  # no vocabulary given
        assert set(loaded.vocabulary.words()) == set(vocab.words())

    def test_file_structure(self, trained, tmp_path):
        _, lm = trained
        path = tmp_path / "model.arpa"
        save_arpa(lm, path)
        text = path.read_text()
        assert text.startswith("\\data\\")
        assert "\\1-grams:" in text and "\\2-grams:" in text
        assert text.rstrip().endswith("\\end\\")

    def test_header_counts_match_body(self, trained, tmp_path):
        _, lm = trained
        path = tmp_path / "model.arpa"
        save_arpa(lm, path)
        # load_arpa validates declared counts against the body.
        load_arpa(path)


class TestLoaderValidation:
    def test_rejects_missing_unigrams(self, tmp_path):
        path = tmp_path / "bad.arpa"
        path.write_text("\\data\\\nngram 2=1\n\n\\2-grams:\n-0.5\ta b\n\\end\\\n")
        with pytest.raises(ValueError):
            load_arpa(path)

    def test_rejects_wrong_token_count(self, tmp_path):
        path = tmp_path / "bad.arpa"
        path.write_text(
            "\\data\\\nngram 1=1\n\n\\1-grams:\n-0.5\ta b\n\\end\\\n"
        )
        with pytest.raises(ValueError):
            load_arpa(path)

    def test_rejects_count_mismatch(self, tmp_path):
        path = tmp_path / "bad.arpa"
        path.write_text("\\data\\\nngram 1=2\n\n\\1-grams:\n-0.5\ta\n\\end\\\n")
        with pytest.raises(ValueError):
            load_arpa(path)

    def test_rejects_stray_line(self, tmp_path):
        path = tmp_path / "bad.arpa"
        path.write_text("\\data\\\nngram 1=1\n\nstray\n\\1-grams:\n-0.5\ta\n\\end\\\n")
        with pytest.raises(ValueError):
            load_arpa(path)


class TestArpaModelBackoff:
    def test_unseen_word_gets_uniform_floor(self, trained, tmp_path):
        vocab, lm = trained
        path = tmp_path / "model.arpa"
        save_arpa(lm, path)
        loaded = load_arpa(path, vocab)
        # A word with no unigram entry in a tiny hand-made table:
        empty = ArpaModel(vocab, order=1, tables=[{}])
        assert empty.prob(0) == pytest.approx(1.0 / len(vocab))

    def test_decoder_accepts_arpa_model(self, task, tmp_path):
        """An ARPA-loaded LM is a drop-in for the recognizer."""
        from repro.decoder import Recognizer

        path = tmp_path / "task.arpa"
        save_arpa(task.lm, path)
        loaded = load_arpa(path, task.corpus.vocabulary)
        rec = Recognizer.create(
            task.dictionary, task.pool, loaded, task.tying, mode="reference"
        )
        utt = task.corpus.test[0]
        assert rec.decode(utt.features).words == tuple(utt.words)
