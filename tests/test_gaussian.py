"""Tests for repro.hmm.gaussian against closed-form values."""

import numpy as np
import pytest

from repro.hmm.gaussian import (
    log_gaussian,
    log_normalizer,
    precision_halves,
    validate_gaussian_params,
)


class TestLogGaussian:
    def test_standard_normal_at_mean(self):
        # log N(0; 0, 1) = -L/2 log(2 pi) for unit variance.
        dim = 5
        value = log_gaussian(np.zeros(dim), np.zeros(dim), np.ones(dim))
        assert float(value) == pytest.approx(-0.5 * dim * np.log(2 * np.pi))

    def test_univariate_closed_form(self):
        x, mu, var = 1.3, 0.2, 2.5
        expected = -0.5 * np.log(2 * np.pi * var) - (x - mu) ** 2 / (2 * var)
        value = log_gaussian(np.array([x]), np.array([mu]), np.array([var]))
        assert float(value) == pytest.approx(expected)

    def test_broadcasting_over_frames(self):
        rng = np.random.default_rng(0)
        frames = rng.normal(size=(10, 4))
        mean = rng.normal(size=4)
        var = rng.uniform(0.5, 2.0, size=4)
        batch = log_gaussian(frames, mean, var)
        assert batch.shape == (10,)
        for t in range(10):
            single = log_gaussian(frames[t], mean, var)
            assert float(single) == pytest.approx(float(batch[t]))

    def test_density_integrates_to_one_1d(self):
        # Riemann check in one dimension.
        xs = np.linspace(-10, 10, 20001)[:, None]
        log_p = log_gaussian(xs, np.array([0.3]), np.array([1.7]))
        integral = np.trapezoid(np.exp(log_p), xs[:, 0])
        assert integral == pytest.approx(1.0, abs=1e-6)

    def test_score_decreases_away_from_mean(self):
        mean = np.zeros(3)
        var = np.ones(3)
        near = float(log_gaussian(0.1 * np.ones(3), mean, var))
        far = float(log_gaussian(3.0 * np.ones(3), mean, var))
        assert near > far


class TestHelpers:
    def test_precision_halves_negative(self):
        prec = precision_halves(np.array([0.5, 2.0]))
        assert np.allclose(prec, [-1.0, -0.25])

    def test_log_normalizer_unit_variance(self):
        dim = 7
        value = log_normalizer(np.ones(dim))
        assert float(value) == pytest.approx(-0.5 * dim * np.log(2 * np.pi))

    def test_validate_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            validate_gaussian_params(np.zeros(3), np.ones(4))

    def test_validate_rejects_nonpositive_variance(self):
        with pytest.raises(ValueError):
            validate_gaussian_params(np.zeros(3), np.array([1.0, 0.0, 1.0]))

    def test_validate_rejects_nan_mean(self):
        with pytest.raises(ValueError):
            validate_gaussian_params(np.array([np.nan]), np.array([1.0]))
