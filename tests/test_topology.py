"""Tests for repro.hmm.topology."""

import numpy as np
import pytest

from repro.hmm.topology import HmmTopology, PhoneHmm


class TestTopology:
    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_supported_sizes(self, n):
        topo = HmmTopology(num_states=n)
        assert topo.log_transition_matrix().shape == (n + 1, n + 1)

    def test_unsupported_size_rejected(self):
        with pytest.raises(ValueError):
            HmmTopology(num_states=4)

    def test_rows_stochastic(self):
        for n in (3, 5, 7):
            assert HmmTopology(num_states=n).rows_stochastic()

    def test_rows_stochastic_with_skip(self):
        topo = HmmTopology(num_states=5, allow_skip=True, skip_prob=0.1)
        assert topo.rows_stochastic()

    def test_skip_prob_bounded(self):
        with pytest.raises(ValueError):
            HmmTopology(num_states=3, self_loop_prob=0.6, allow_skip=True, skip_prob=0.5)

    def test_self_loop_prob_bounds(self):
        with pytest.raises(ValueError):
            HmmTopology(self_loop_prob=0.0)
        with pytest.raises(ValueError):
            HmmTopology(self_loop_prob=1.0)

    def test_chain_log_probs(self):
        topo = HmmTopology(self_loop_prob=0.6)
        self_lp, fwd_lp = topo.chain_log_probs()
        assert self_lp == pytest.approx(np.log(0.6))
        assert fwd_lp == pytest.approx(np.log(0.4))

    def test_exit_state_absorbs(self):
        mat = HmmTopology(num_states=3).log_transition_matrix()
        assert mat[3, 3] == 0.0
        assert np.isneginf(mat[3, :3]).all()

    def test_left_to_right_structure(self):
        mat = HmmTopology(num_states=3).log_transition_matrix()
        # No backward arcs.
        assert np.isneginf(mat[1, 0]) and np.isneginf(mat[2, 1])


class TestPhoneHmm:
    def test_senone_count_must_match_states(self):
        topo = HmmTopology(num_states=3)
        with pytest.raises(ValueError):
            PhoneHmm(name="AA", topology=topo, senone_ids=(1, 2))

    def test_negative_senone_rejected(self):
        topo = HmmTopology(num_states=3)
        with pytest.raises(ValueError):
            PhoneHmm(name="AA", topology=topo, senone_ids=(0, -1, 2))

    def test_sample_state_sequence_monotone(self):
        topo = HmmTopology(num_states=3)
        hmm = PhoneHmm(name="AA", topology=topo, senone_ids=(0, 1, 2))
        rng = np.random.default_rng(0)
        for _ in range(20):
            path = hmm.sample_state_sequence(rng)
            assert path[0] == 0
            assert all(b - a in (0, 1) for a, b in zip(path, path[1:]))
            assert path[-1] == 2 or len(set(path)) <= 3

    def test_sample_min_frames(self):
        topo = HmmTopology(num_states=3)
        hmm = PhoneHmm(name="AA", topology=topo, senone_ids=(0, 1, 2))
        rng = np.random.default_rng(1)
        for _ in range(10):
            assert len(hmm.sample_state_sequence(rng, min_frames=6)) >= 6
