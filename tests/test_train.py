"""Tests for repro.hmm.train — k-means, EM, alignment, pool training."""

import numpy as np
import pytest

from repro.hmm.topology import HmmTopology, PhoneHmm
from repro.hmm.train import (
    TrainingConfig,
    fit_gmm,
    forced_alignment,
    kmeans,
    train_senone_pool,
    uniform_alignment,
)


class TestKMeans:
    def test_recovers_separated_clusters(self):
        rng = np.random.default_rng(0)
        data = np.vstack(
            [rng.normal(c, 0.2, size=(100, 2)) for c in (-5.0, 0.0, 5.0)]
        )
        centroids = kmeans(data, 3, rng)
        assert sorted(np.round(centroids[:, 0]).tolist()) == [-5.0, 0.0, 5.0]

    def test_more_clusters_than_points(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(3, 2))
        centroids = kmeans(data, 5, rng)
        assert centroids.shape == (5, 2)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            kmeans(np.empty((0, 2)), 2, np.random.default_rng(0))

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((5, 2)), 0, np.random.default_rng(0))


class TestFitGmm:
    def test_likelihood_improves_over_single_gaussian(self):
        rng = np.random.default_rng(2)
        data = np.vstack(
            [rng.normal(-4, 0.5, size=(200, 3)), rng.normal(4, 0.5, size=(200, 3))]
        )
        one = fit_gmm(data, 1, rng)
        two = fit_gmm(data, 2, rng)
        assert two.log_prob(data).sum() > one.log_prob(data).sum()

    def test_weights_valid(self):
        rng = np.random.default_rng(3)
        gmm = fit_gmm(rng.normal(size=(100, 4)), 3, rng)
        assert gmm.weights.sum() == pytest.approx(1.0)
        assert np.all(gmm.weights > 0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            fit_gmm(np.empty((0, 3)), 2, np.random.default_rng(0))


class TestUniformAlignment:
    def test_covers_all_states(self):
        assign = uniform_alignment(30, 3)
        assert set(assign.tolist()) == {0, 1, 2}

    def test_monotone(self):
        assign = uniform_alignment(17, 5)
        assert np.all(np.diff(assign) >= 0)

    def test_fewer_frames_than_states(self):
        assign = uniform_alignment(2, 5)
        assert assign.shape == (2,)
        assert np.all(assign < 5)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            uniform_alignment(0, 3)
        with pytest.raises(ValueError):
            uniform_alignment(3, 0)


class TestForcedAlignment:
    def test_recovers_planted_segmentation(self):
        # Three states with far-apart preferred frames.
        num_frames, num_states = 30, 3
        scores = np.full((num_frames, num_states), -50.0)
        scores[:10, 0] = -1.0
        scores[10:20, 1] = -1.0
        scores[20:, 2] = -1.0
        align = forced_alignment(scores, np.log(0.6), np.log(0.4))
        assert align[0] == 0 and align[-1] == 2
        assert np.all(np.diff(align) >= 0)
        assert np.count_nonzero(align == 1) == 10

    def test_monotone_and_complete(self, rng):
        scores = rng.normal(-5, 1, size=(40, 4))
        align = forced_alignment(scores, np.log(0.5), np.log(0.5))
        assert align[0] == 0
        assert align[-1] == 3
        assert np.all(np.isin(np.diff(align), [0, 1]))

    def test_rejects_too_few_frames(self):
        with pytest.raises(ValueError):
            forced_alignment(np.zeros((2, 5)), np.log(0.5), np.log(0.5))


class TestTrainSenonePool:
    def test_trained_pool_separates_planted_senones(self):
        """Flat-start training recovers two distinct phone models."""
        rng = np.random.default_rng(4)
        topo = HmmTopology(num_states=3)
        hmm_a = PhoneHmm(name="A", topology=topo, senone_ids=(0, 1, 2))
        hmm_b = PhoneHmm(name="B", topology=topo, senone_ids=(3, 4, 5))
        dim = 4
        # Phone A frames near +2, phone B frames near -2.
        utterances, transcripts = [], []
        for _ in range(12):
            frames_a = rng.normal(+2.0, 0.3, size=(12, dim))
            frames_b = rng.normal(-2.0, 0.3, size=(12, dim))
            utterances.append(np.vstack([frames_a, frames_b]))
            transcripts.append([hmm_a, hmm_b])
        pool = train_senone_pool(
            utterances,
            transcripts,
            num_senones=6,
            config=TrainingConfig(num_components=2, em_iterations=4, realignment_passes=1),
        )
        probe_a = pool.score_frame(np.full(dim, 2.0))
        probe_b = pool.score_frame(np.full(dim, -2.0))
        assert probe_a[:3].max() > probe_a[3:].max()
        assert probe_b[3:].max() > probe_b[:3].max()

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            train_senone_pool([np.zeros((5, 2))], [], num_senones=3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            train_senone_pool([], [], num_senones=3)
