"""Tests for repro.core.soc — the assembled system."""

import numpy as np
import pytest

from repro.core.soc import SpeechSoC
from repro.quant.float_formats import MANTISSA_12


@pytest.fixture(scope="module")
def soc(task):
    return SpeechSoC(task.dictionary, task.pool, task.lm, task.tying)


class TestDecode:
    def test_decode_features_words(self, soc, task):
        utt = task.corpus.test[0]
        report = soc.decode_features(utt.features)
        assert report.words == tuple(utt.words)

    def test_decode_waveform_end_to_end(self, task):
        """Audio in, words out — the full Figure 1 pipeline."""
        from repro.workloads.corpus import _realize_sentence
        from repro.workloads.synthesizer import PhoneSynthesizer

        soc = SpeechSoC(task.dictionary, task.pool, task.lm, task.tying)
        rng = np.random.default_rng(99)
        synth = PhoneSynthesizer(task.corpus.phone_set)
        words = list(task.corpus.test[0].words[:2])
        waveform, _ = _realize_sentence(words, task.dictionary, synth, rng)
        report = soc.decode_waveform(waveform)
        assert report.words == tuple(words)

    def test_real_time_on_tiny_task(self, soc, task):
        report = soc.decode_features(task.corpus.test[0].features)
        assert report.is_real_time
        for unit_report in report.op_unit_reports:
            assert unit_report.mean_utilization < 0.5

    def test_processor_utilization_low(self, soc, task):
        report = soc.decode_features(task.corpus.test[0].features)
        assert 0.0 < report.processor_utilization < 0.5

    def test_power_reported(self, soc, task):
        report = soc.decode_features(task.corpus.test[0].features)
        assert report.power.average_power_w > 0
        # Mostly idle tiny task: far below the 400 mW full-load point.
        assert report.power.average_power_w < 0.4

    def test_bandwidth_below_worst_case(self, soc, task):
        report = soc.decode_features(task.corpus.test[0].features)
        assert 0 < report.peak_bandwidth_gbps < soc.worst_case_bandwidth_gbps()

    def test_flash_regions(self, soc):
        assert set(soc.flash.regions()[0].name.split()) # non-empty names
        names = {r.name for r in soc.flash.regions()}
        assert names == {"acoustic-model", "dictionary", "language-model"}

    def test_area_scales_with_structures(self, task):
        one = SpeechSoC(task.dictionary, task.pool, task.lm, task.tying,
                        num_structures=1)
        report = one.decode_features(task.corpus.test[0].features)
        assert report.area_mm2 == pytest.approx(2.2, abs=0.01)

    def test_format_output(self, soc, task):
        report = soc.decode_features(task.corpus.test[0].features)
        text = report.format()
        assert "recognized:" in text and "GB/s" in text and "mm^2" in text


class TestConfiguration:
    def test_narrow_storage_shrinks_flash(self, task):
        wide = SpeechSoC(task.dictionary, task.pool, task.lm, task.tying)
        narrow = SpeechSoC(
            task.dictionary, task.pool, task.lm, task.tying,
            storage_format=MANTISSA_12,
        )
        wide_mb = wide.flash.region("acoustic-model").num_bytes
        narrow_mb = narrow.flash.region("acoustic-model").num_bytes
        assert narrow_mb == pytest.approx(wide_mb * 21 / 32)

    def test_clock_gating_saves_energy(self, task):
        utt = task.corpus.test[0]
        gated = SpeechSoC(task.dictionary, task.pool, task.lm, task.tying,
                          clock_gating=True)
        free = SpeechSoC(task.dictionary, task.pool, task.lm, task.tying,
                         clock_gating=False)
        e_gated = gated.decode_features(utt.features).power.energy_j
        e_free = free.decode_features(utt.features).power.energy_j
        assert e_gated < e_free

    def test_rejects_zero_structures(self, task):
        with pytest.raises(ValueError):
            SpeechSoC(task.dictionary, task.pool, task.lm, task.tying,
                      num_structures=0)

    def test_worst_case_bandwidth_formula(self, soc, task):
        expected = task.pool.storage_bytes() / 0.010 / 1e9
        assert soc.worst_case_bandwidth_gbps() == pytest.approx(expected)
