"""Tests for repro.decoder.viterbi — the exact reference decoder."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decoder.viterbi import viterbi_decode, viterbi_score


def _brute_force_best(log_trans, log_obs, log_init):
    """Enumerate every state path (exponential; tiny cases only)."""
    t_max, s = log_obs.shape
    best_score, best_path = -np.inf, None
    for path in itertools.product(range(s), repeat=t_max):
        score = log_init[path[0]] + log_obs[0, path[0]]
        for t in range(1, t_max):
            score += log_trans[path[t - 1], path[t]] + log_obs[t, path[t]]
        if score > best_score:
            best_score, best_path = score, path
    return best_score, best_path


class TestViterbiExact:
    def test_matches_brute_force(self, rng):
        s, t = 3, 5
        trans = np.log(rng.dirichlet(np.ones(s), size=s))
        obs = rng.normal(-2, 1, size=(t, s))
        init = np.log(rng.dirichlet(np.ones(s)))
        result = viterbi_decode(trans, obs, init)
        brute_score, brute_path = _brute_force_best(trans, obs, init)
        assert result.log_prob == pytest.approx(brute_score)
        assert result.states == brute_path

    def test_respects_forbidden_transitions(self):
        with np.errstate(divide="ignore"):
            trans = np.log(np.array([[0.5, 0.5], [0.0, 1.0]]))
        trans[1, 0] = -np.inf
        obs = np.zeros((4, 2))
        init = np.array([0.0, -np.inf])
        result = viterbi_decode(trans, obs, init)
        # Once in state 1, cannot return to 0.
        entered = False
        for state in result.states:
            if state == 1:
                entered = True
            if entered:
                assert state == 1

    def test_single_frame(self):
        trans = np.zeros((2, 2))
        obs = np.array([[-1.0, -0.5]])
        init = np.array([0.0, 0.0])
        result = viterbi_decode(trans, obs, init)
        assert result.states == (1,)
        assert result.log_prob == pytest.approx(-0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            viterbi_decode(np.zeros((2, 3)), np.zeros((2, 2)), np.zeros(2))
        with pytest.raises(ValueError):
            viterbi_decode(np.zeros((2, 2)), np.zeros((2, 3)), np.zeros(2))
        with pytest.raises(ValueError):
            viterbi_decode(np.zeros((2, 2)), np.zeros((0, 2)), np.zeros(2))
        with pytest.raises(ValueError):
            viterbi_decode(np.zeros((2, 2)), np.zeros((2, 2)), np.zeros(3))

    def test_score_helper(self, rng):
        trans = np.log(rng.dirichlet(np.ones(2), size=2))
        obs = rng.normal(size=(3, 2))
        init = np.log(np.array([0.5, 0.5]))
        assert viterbi_score(trans, obs, init) == viterbi_decode(
            trans, obs, init
        ).log_prob


@given(st.integers(min_value=2, max_value=3), st.integers(min_value=2, max_value=4),
       st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60, deadline=None)
def test_property_viterbi_equals_brute_force(n_states, n_frames, seed):
    rng = np.random.default_rng(seed)
    trans = np.log(rng.dirichlet(np.ones(n_states), size=n_states))
    obs = rng.normal(-2, 1, size=(n_frames, n_states))
    init = np.log(rng.dirichlet(np.ones(n_states)))
    result = viterbi_decode(trans, obs, init)
    brute_score, _ = _brute_force_best(trans, obs, init)
    assert result.log_prob == pytest.approx(brute_score)
