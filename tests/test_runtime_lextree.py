"""Batched tree-lexicon search vs the sequential prefix-tree decoder.

The tree lane bank (:class:`~repro.runtime.lextree.TreeLaneBank`) is
the large-vocabulary analogue of the flat lane engine: stacked
``(B, num_states)`` token state over one shared
:class:`~repro.decoder.lextree.TreeLexiconNetwork`.  The contract is
the same as the flat runtime's — the scheduler decides WHEN a lane is
stepped, never WHAT it computes:

* reference, hardware and fast modes: every lane's words, path score,
  per-frame statistics, lattice size and fast-GMM work counters are
  BIT-IDENTICAL to a sequential ``network="tree"``
  :meth:`~repro.decoder.recognizer.Recognizer.decode`;
* blas mode: word-identical with scores inside the documented
  :data:`~repro.decoder.scorer.BLAS_SCORE_ATOL`;
* the property sweep drives ragged lengths x arrival orders x lane
  budgets 1..8 through the continuous runtime, including mid-decode
  :meth:`~repro.runtime.batch.LaneBankBase.cancel`.
"""

import numpy as np
import pytest

from repro.decoder.fast_gmm import FastGmmConfig
from repro.decoder.lextree import TreeLexiconNetwork, TreeWordDecodeStage
from repro.decoder.recognizer import Recognizer
from repro.decoder.scorer import BLAS_SCORE_ATOL
from repro.decoder.word_decode import DecoderConfig
from repro.runtime import (
    BatchRecognizer,
    ContinuousBatchRecognizer,
    LaneBank,
    TreeLaneBank,
)
from repro.workloads.tasks import dictation_cd_task, expand_to_context_dependent

EXACT_MODES = ("reference", "hardware", "fast")
N_TRIALS = 3
MIN_FRAMES = 5


def make_tree_recognizer(task, mode: str, **kwargs) -> Recognizer:
    if mode == "fast":
        kwargs.setdefault("fast_config", FastGmmConfig.all_layers())
    return Recognizer.create(
        task.dictionary, task.pool, task.lm, task.tying,
        mode=mode, network="tree", **kwargs,
    )


@pytest.fixture(scope="module", params=EXACT_MODES)
def tree_trio(request, task):
    """Sequential tree recognizer, its two batched twins, decode cache."""
    rec = make_tree_recognizer(task, request.param)
    return rec, rec.as_batch(), rec.as_continuous(), {}


def _sequential(rec, base, cache, utt_index, length):
    key = (utt_index, length)
    if key not in cache:
        cache[key] = rec.decode(base[utt_index][:length])
    return cache[key]


def _assert_lane_equal(seq, lane):
    assert lane.words == seq.words
    assert lane.score == seq.score  # bit-identical, not approx
    assert lane.frames == seq.frames
    assert lane.lattice_size == seq.lattice_size
    assert [f.__dict__ for f in lane.frame_stats] == [
        f.__dict__ for f in seq.frame_stats
    ]
    assert lane.scoring_stats.active_per_frame == seq.scoring_stats.active_per_frame
    assert lane.fast_stats == seq.fast_stats  # None outside fast mode


class TestTreeBatchParity:
    """Drained batches vs sequential, bit for bit, batch sizes 1..8."""

    @pytest.mark.parametrize("batch_size", [1, 2, 3, 5, 8])
    def test_batch_sizes_match_sequential(self, tree_trio, task, batch_size):
        rec, batch, _, cache = tree_trio
        base = [u.features for u in task.corpus.test]
        feats = [base[i % len(base)] for i in range(batch_size)]
        result = batch.decode_batch(feats)
        assert len(result) == batch_size
        for i, lane in enumerate(result):
            seq = _sequential(
                rec, base, cache, i % len(base), feats[i].shape[0]
            )
            _assert_lane_equal(seq, lane)

    def test_ragged_batch_matches_sequential(self, tree_trio, task):
        """Heavily ragged lengths: retired lanes stay frozen."""
        rec, batch, _, cache = tree_trio
        base = [u.features for u in task.corpus.test]
        rng = np.random.default_rng(77)
        lengths = [
            int(rng.integers(MIN_FRAMES, f.shape[0] + 1)) for f in base
        ]
        feats = [f[:n] for f, n in zip(base, lengths)]
        result = batch.decode_batch(feats)
        for i, lane in enumerate(result):
            _assert_lane_equal(_sequential(rec, base, cache, i, lengths[i]), lane)

    def test_bank_is_tree_family(self, tree_trio):
        _, batch, cont, _ = tree_trio
        assert batch.network_kind == "tree"
        assert isinstance(batch.make_bank(2), TreeLaneBank)
        assert isinstance(cont.make_bank(2), TreeLaneBank)


class TestTreeContinuousSweep:
    """Ragged lengths x arrival orders x max_lanes 1..8 == sequential."""

    def test_random_ragged_arrival_orders(self, tree_trio, task):
        rec, _, cont, cache = tree_trio
        base = [u.features for u in task.corpus.test]
        rng = np.random.default_rng(2024)
        for _ in range(N_TRIALS):
            order = rng.permutation(len(base))
            lengths = [
                int(rng.integers(MIN_FRAMES, base[i].shape[0] + 1)) for i in order
            ]
            feats = [base[i][:n] for i, n in zip(order, lengths)]
            max_lanes = int(rng.integers(1, 9))
            result = cont.decode_stream(feats, max_lanes=max_lanes)
            assert len(result) == len(feats)
            for (i, n), lane in zip(zip(order, lengths), result):
                _assert_lane_equal(_sequential(rec, base, cache, int(i), n), lane)

    @pytest.mark.parametrize("max_lanes", list(range(1, 9)))
    def test_every_lane_budget_matches_sequential(
        self, tree_trio, task, max_lanes
    ):
        """Each budget 1..8 explicitly, reversed arrival, fixed rag."""
        rec, _, cont, cache = tree_trio
        base = [u.features for u in task.corpus.test]
        order = list(range(len(base)))[::-1]
        lengths = [
            max(MIN_FRAMES, base[i].shape[0] // (2 if i % 2 else 1))
            for i in order
        ]
        feats = [base[i][:n] for i, n in zip(order, lengths)]
        result = cont.decode_stream(feats, max_lanes=max_lanes)
        for (i, n), lane in zip(zip(order, lengths), result):
            _assert_lane_equal(_sequential(rec, base, cache, i, n), lane)

    def test_compact_shrinks_tree_bank_state(self, tree_trio, task):
        """Direct TreeLaneBank lifecycle: retire -> compact -> decode on."""
        rec, _, cont, _ = tree_trio
        feats = [
            np.asarray(task.corpus.test[0].features, dtype=np.float64),
            np.asarray(task.corpus.test[1].features[:6], dtype=np.float64),
        ]
        bank = cont.make_bank(2)
        assert isinstance(bank, TreeLaneBank)
        bank.admit(0, 0, feats[0])
        bank.admit(1, 1, feats[1])
        results = {}
        while bank.any_active:
            for lane in bank.step():
                utt = int(bank.lane_utt[lane])
                results[utt] = bank.retire(lane)
            if bank.compact() == 1:
                assert bank.delta.shape[0] == 1
                assert bank.active.shape == (1,)
                assert len(bank.lattices) == 1
        assert bank.num_lanes == 1
        for i, f in enumerate(feats):
            _assert_lane_equal(rec.decode(f), results[i])


class TestTreeCancellation:
    """Mid-decode ``LaneBank.cancel`` must not perturb tree survivors."""

    def _drive_with_cancellation(self, batch, feats, victim_feats, reseed=None):
        batch._reset_accounting()
        bank = batch.make_bank(len(feats) + 1)
        assert isinstance(bank, TreeLaneBank)
        for lane, f in enumerate(feats):
            bank.admit(lane, lane, batch._validate_features(lane, f))
        victim_lane = len(feats)
        bank.admit(
            victim_lane, 900, batch._validate_features(victim_lane, victim_feats)
        )
        cancel_at = min(f.shape[0] for f in feats) // 2  # everyone mid-decode
        assert 0 < cancel_at < victim_feats.shape[0]
        results = {}
        cancelled = False
        while bank.any_active:
            if not cancelled and bank.steps == cancel_at:
                frames_done = bank.cancel(victim_lane)
                assert frames_done == cancel_at
                cancelled = True
                if reseed is not None:
                    bank.admit(
                        victim_lane,
                        901,
                        batch._validate_features(victim_lane, reseed),
                    )
            for lane in bank.step():
                utt = int(bank.lane_utt[lane])
                results[utt] = bank.retire(lane)
        assert cancelled
        return results

    def test_cancelled_lane_does_not_perturb_survivors(self, tree_trio, task):
        rec, batch, _, cache = tree_trio
        base = [u.features for u in task.corpus.test]
        feats = base[:4]
        results = self._drive_with_cancellation(batch, feats, feats[0])
        assert 900 not in results  # the victim never produced a result
        for utt in range(4):
            seq = _sequential(rec, base, cache, utt, feats[utt].shape[0])
            _assert_lane_equal(seq, results[utt])

    def test_reseeded_lane_after_cancel_matches_sequential(self, tree_trio, task):
        rec, batch, _, cache = tree_trio
        base = [u.features for u in task.corpus.test]
        feats = base[:4]
        results = self._drive_with_cancellation(
            batch, feats, feats[0], reseed=feats[1]
        )
        for utt in range(4):
            seq = _sequential(rec, base, cache, utt, feats[utt].shape[0])
            _assert_lane_equal(seq, results[utt])
        # The reseeded lane re-used feats[1], so it must match too.
        seq = _sequential(rec, base, cache, 1, feats[1].shape[0])
        _assert_lane_equal(seq, results[901])


class TestTreeBlasParity:
    """Matmul-form scoring over the tree: words exact, scores in tol."""

    @pytest.fixture(scope="class")
    def blas_pair(self, task):
        rec = make_tree_recognizer(task, "blas")
        seq = [rec.decode(u.features) for u in task.corpus.test]
        return rec, seq

    def _assert_blas_lane(self, seq, lane):
        assert lane.words == seq.words
        assert abs(lane.score - seq.score) <= BLAS_SCORE_ATOL
        assert lane.frames == seq.frames

    def test_batch_blas_matches_sequential(self, blas_pair, task):
        rec, seq = blas_pair
        feats = [u.features for u in task.corpus.test]
        result = rec.as_batch().decode_batch(feats)
        for s, lane in zip(seq, result):
            self._assert_blas_lane(s, lane)

    def test_continuous_blas_matches_sequential(self, blas_pair, task):
        rec, seq = blas_pair
        feats = [u.features for u in task.corpus.test]
        result = rec.as_continuous().decode_stream(feats, max_lanes=3)
        assert max(result.admit_steps) > 0  # refill actually happened
        for s, lane in zip(seq, result):
            self._assert_blas_lane(s, lane)


class TestNetworkAxis:
    """The ``network=`` selection axis next to ``mode=``."""

    def test_unknown_network_names_supported_networks(self, task):
        for factory in (
            Recognizer.create,
            BatchRecognizer.create,
            ContinuousBatchRecognizer.create,
        ):
            with pytest.raises(ValueError) as err:
                factory(
                    task.dictionary, task.pool, task.lm, task.tying,
                    network="trellis",
                )
            message = str(err.value)
            assert "trellis" in message
            for network in ("'flat'", "'tree'"):
                assert network in message

    def test_supported_networks_exposed(self):
        for cls in (Recognizer, BatchRecognizer, ContinuousBatchRecognizer):
            assert cls.SUPPORTED_NETWORKS == ("flat", "tree")

    def test_flat_default_unchanged(self, task):
        rec = Recognizer.create(task.dictionary, task.pool, task.lm, task.tying)
        assert rec.network_kind == "flat"
        assert isinstance(rec.as_batch().make_bank(1), LaneBank)

    def test_twins_carry_the_network_axis(self, task):
        rec = make_tree_recognizer(task, "reference")
        assert rec.network_kind == "tree"
        assert rec.as_batch().network_kind == "tree"
        assert rec.as_continuous().network_kind == "tree"
        assert isinstance(rec.word_stage, TreeWordDecodeStage)


class TestTreeStageValidation:
    """Typed validation of TreeWordDecodeStage construction args."""

    @pytest.fixture(scope="class")
    def parts(self, task):
        rec = make_tree_recognizer(task, "reference")
        stage = rec.word_stage
        return stage.network, stage.lm, stage.phone_decode

    def test_network_type_checked(self, task, parts):
        _, lm, phone = parts
        with pytest.raises(TypeError) as err:
            TreeWordDecodeStage(network=task.dictionary, lm=lm, phone_decode=phone)
        assert "TreeLexiconNetwork" in str(err.value)

    def test_config_type_checked(self, parts):
        net, lm, phone = parts
        with pytest.raises(TypeError) as err:
            TreeWordDecodeStage(
                network=net, lm=lm, phone_decode=phone, config={"beam": 100.0}
            )
        assert "DecoderConfig" in str(err.value)

    def test_beam_type_checked(self, parts):
        net, lm, phone = parts
        cfg = DecoderConfig(beam=100.0)  # a raw float, not BeamConfig
        with pytest.raises(TypeError) as err:
            TreeWordDecodeStage(network=net, lm=lm, phone_decode=phone, config=cfg)
        assert "BeamConfig" in str(err.value)

    def test_viterbi_unit_type_checked(self, parts):
        net, lm, phone = parts
        with pytest.raises(TypeError) as err:
            TreeWordDecodeStage(
                network=net, lm=lm, phone_decode=phone, viterbi_unit="hw"
            )
        assert "ViterbiUnit" in str(err.value)


class TestContextDependentDictation:
    """The triphone-tied dictation variant over the tree runtime.

    ``expand_to_context_dependent`` gives every CD senone its CI
    parent's parameters, so recognition is unchanged while the fast-GMM
    CI layer finally has a real CD->CI reduction to exploit.  The
    batched tree runtime must preserve bit-exact parity INCLUDING the
    four-layer work counters.
    """

    @pytest.fixture(scope="class")
    def cd_task(self, task):
        return expand_to_context_dependent(task, num_senones=600)

    def test_cd_tree_fast_batch_parity(self, cd_task):
        rec = make_tree_recognizer(cd_task, "fast")
        feats = [u.features for u in cd_task.corpus.test[:4]]
        seq = [rec.decode(f) for f in feats]
        result = rec.as_batch().decode_batch(feats)
        for s, lane in zip(seq, result):
            _assert_lane_equal(s, lane)
        # The CI layer must be live on the CD pool (real approximation).
        stats = seq[0].fast_stats
        assert stats.senones_approximated > 0
        assert stats.gaussians_evaluated < stats.gaussians_possible

    def test_cd_recognition_matches_ci_parent(self, cd_task, task):
        """Maximal tying: the CD expansion changes no recognition."""
        cd = make_tree_recognizer(cd_task, "reference")
        ci = make_tree_recognizer(task, "reference")
        f = task.corpus.test[0].features
        assert cd.decode(f).words == ci.decode(f).words

    def test_dictation_cd_task_recipe(self):
        """The first-class preset builds the CD variant end to end."""
        small = dictation_cd_task(
            vocabulary_size=30,
            train_sentences=12,
            test_sentences=2,
            seed=31,
            num_senones=500,
        )
        assert small.tying.num_senones == 500
        rec = make_tree_recognizer(small, "fast")
        f = small.corpus.test[0].features
        seq = rec.decode(f)
        lane = rec.as_batch().decode_batch([f]).results[0]
        _assert_lane_equal(seq, lane)


class TestTreeServing:
    """The serving front door over a tree recognizer."""

    def test_server_and_wire_report_tree_network(self, task):
        import asyncio

        from repro.serve import ServeClient, Server, WireServer

        rec = make_tree_recognizer(task, "reference")
        feats = [u.features for u in task.corpus.test[:3]]
        baselines = [rec.decode(f) for f in feats]

        async def scenario():
            async with Server(rec, num_workers=1, max_lanes=2) as server:
                async with WireServer(server) as wire:
                    async with await ServeClient.connect(
                        wire.host, wire.port
                    ) as client:
                        assert client.hello["network"] == "tree"
                        for f, base in zip(feats, baselines):
                            result = await client.decode(f)
                            assert result.ok
                            assert result.words == base.words
                            assert result.score == base.score  # bit-exact
                        snapshot = await client.metrics()
                        assert snapshot["network"] == "tree"
                assert server.metrics().network == "tree"

        asyncio.run(scenario())
