"""Cross-module integration tests: the full system end to end."""

import io

import numpy as np
import pytest

from repro.core.soc import SpeechSoC
from repro.decoder.recognizer import Recognizer
from repro.eval.wer import corpus_wer
from repro.hmm.acoustic_model import AcousticModel
from repro.quant.float_formats import MANTISSA_12, PAPER_FORMATS
from repro.workloads.corpus import monophone_hmms


class TestRecognitionQuality:
    def test_tiny_task_wer_low(self, task):
        """End-to-end: trained models decode held-out speech well."""
        rec = Recognizer.create(
            task.dictionary, task.pool, task.lm, task.tying, mode="reference"
        )
        refs, hyps = [], []
        for utt in task.corpus.test:
            refs.append(utt.words)
            hyps.append(rec.decode(utt.features).words)
        counts = corpus_wer(refs, hyps)
        assert counts.wer < 0.10, f"WER {counts.wer:.2%} too high"

    def test_mantissa_12_preserves_wer(self, task):
        """The paper's R1 relative claim on the tiny task."""
        refs, full_hyps, narrow_hyps = [], [], []
        full = Recognizer.create(
            task.dictionary, task.pool, task.lm, task.tying, mode="hardware"
        )
        narrow = Recognizer.create(
            task.dictionary, task.pool, task.lm, task.tying,
            mode="hardware", storage_format=MANTISSA_12,
        )
        for utt in task.corpus.test:
            refs.append(utt.words)
            full_hyps.append(full.decode(utt.features).words)
            narrow_hyps.append(narrow.decode(utt.features).words)
        full_wer = corpus_wer(refs, full_hyps).wer
        narrow_wer = corpus_wer(refs, narrow_hyps).wer
        assert abs(narrow_wer - full_wer) <= 0.05

    def test_active_senones_stay_below_half(self, task):
        """R2 on held-out data: feedback keeps evaluation sparse."""
        rec = Recognizer.create(
            task.dictionary, task.pool, task.lm, task.tying, mode="reference"
        )
        for utt in task.corpus.test[:4]:
            result = rec.decode(utt.features)
            assert result.mean_active_senone_fraction < 0.5


class TestModelPersistence:
    def test_save_quantize_load_decode(self, task, tmp_path):
        """Flash image round trip changes nothing about recognition."""
        hmms = monophone_hmms(task.corpus.phone_set, task.tying, task.topology)
        model = AcousticModel(pool=task.pool, hmms=hmms)
        path = tmp_path / "am.bin"
        model.save(path, MANTISSA_12)
        loaded, fmt = AcousticModel.load(path)
        assert fmt.mantissa_bits == 12
        rec = Recognizer.create(
            task.dictionary, loaded.pool, task.lm, task.tying, mode="reference"
        )
        utt = task.corpus.test[0]
        assert rec.decode(utt.features).words == tuple(utt.words)

    def test_image_sizes_scale_with_mantissa(self, task):
        hmms = monophone_hmms(task.corpus.phone_set, task.tying, task.topology)
        model = AcousticModel(pool=task.pool, hmms=hmms)
        sizes = []
        for fmt in PAPER_FORMATS:
            buf = io.BytesIO()
            model.save(buf, fmt)
            sizes.append(buf.getbuffer().nbytes)
        assert sizes[0] > sizes[1] > sizes[2]
        # Parameter payload dominates; ratios approach 24/32 and 21/32.
        assert sizes[1] / sizes[0] == pytest.approx(24 / 32, abs=0.02)
        assert sizes[2] / sizes[0] == pytest.approx(21 / 32, abs=0.02)


class TestSocConsistency:
    def test_soc_and_recognizer_agree(self, task):
        soc = SpeechSoC(task.dictionary, task.pool, task.lm, task.tying)
        rec = Recognizer.create(
            task.dictionary, task.pool, task.lm, task.tying, mode="hardware"
        )
        utt = task.corpus.test[1]
        assert soc.decode_features(utt.features).words == rec.decode(utt.features).words

    def test_one_vs_two_structures_same_words(self, task):
        one = SpeechSoC(task.dictionary, task.pool, task.lm, task.tying,
                        num_structures=1)
        two = SpeechSoC(task.dictionary, task.pool, task.lm, task.tying,
                        num_structures=2)
        utt = task.corpus.test[2]
        r1 = one.decode_features(utt.features)
        r2 = two.decode_features(utt.features)
        assert r1.words == r2.words
        # Two structures halve the per-unit senone stream.
        assert (
            r2.op_unit_reports[0].mean_cycles_per_frame
            < r1.op_unit_reports[0].mean_cycles_per_frame
        )

    def test_command_task_decodes(self):
        """A second trained scenario exercises the whole stack."""
        from repro.workloads.tasks import command_task

        task = command_task(seed=19)
        soc = SpeechSoC(task.dictionary, task.pool, task.lm, task.tying)
        refs, hyps = [], []
        for utt in task.corpus.test[:6]:
            refs.append(utt.words)
            hyps.append(soc.decode_features(utt.features).words)
        assert corpus_wer(refs, hyps).wer < 0.15
