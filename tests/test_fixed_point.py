"""Tests for repro.quant.fixed_point."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.fixed_point import QFormat


class TestQFormat:
    def test_range(self):
        q = QFormat(integer_bits=7, fraction_bits=8)
        assert q.min_value == -128.0
        assert q.max_value == 128.0 - 2.0**-8
        assert q.total_bits == 16

    def test_resolution(self):
        assert QFormat(3, 4).resolution == 0.0625

    def test_rejects_negative_bits(self):
        with pytest.raises(ValueError):
            QFormat(-1, 4)
        with pytest.raises(ValueError):
            QFormat(4, -1)

    def test_rejects_too_wide(self):
        with pytest.raises(ValueError):
            QFormat(40, 40)

    def test_quantize_rounds(self):
        q = QFormat(3, 2)  # resolution 0.25
        assert q.quantize(1.1) == 1.0
        assert q.quantize(1.13) == 1.25

    def test_saturates(self):
        q = QFormat(3, 2)
        assert q.quantize(100.0) == q.max_value
        assert q.quantize(-100.0) == q.min_value

    def test_stats(self):
        q = QFormat(3, 2)
        values = np.array([0.0, 100.0, -100.0, 0.01, 1.0])
        out, stats = q.quantize_with_stats(values)
        assert stats.saturated_high == 1
        assert stats.saturated_low == 1
        assert stats.flushed_to_zero == 1  # 0.01 -> 0
        assert stats.total == 5
        assert stats.saturation_rate == pytest.approx(0.4)
        assert out[4] == 1.0

    def test_representable(self):
        q = QFormat(3, 2)
        assert q.representable(1.25)
        assert not q.representable(1.1)
        assert not q.representable(1000.0)

    def test_empty_stats(self):
        q = QFormat(3, 2)
        _, stats = q.quantize_with_stats(np.array([]))
        assert stats.saturation_rate == 0.0
        assert stats.flush_rate == 0.0


class TestLogProbDynamicRange:
    """The paper's fixed-point argument (Section IV-B / R7)."""

    def test_narrow_format_saturates_log_probs(self):
        # Log observation probabilities span roughly [-1200, 0] for a
        # 39-dim mixture; a Q7.8 format (range +-128) must clip.
        rng = np.random.default_rng(0)
        log_probs = -np.abs(rng.normal(400, 300, size=1000))
        q = QFormat(7, 8)
        _, stats = q.quantize_with_stats(log_probs)
        assert stats.saturation_rate > 0.5

    def test_wide_format_does_not(self):
        rng = np.random.default_rng(0)
        log_probs = -np.abs(rng.normal(400, 300, size=1000))
        q = QFormat(15, 16)  # Q15.16: range +-32768
        _, stats = q.quantize_with_stats(log_probs)
        assert stats.saturation_rate == 0.0


@given(
    st.integers(min_value=0, max_value=20),
    st.integers(min_value=0, max_value=20),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)
@settings(max_examples=200, deadline=None)
def test_property_quantize_error_bound(int_bits, frac_bits, value):
    q = QFormat(int_bits, frac_bits)
    out = float(q.quantize(value))
    if q.min_value <= value <= q.max_value:
        assert abs(out - value) <= q.resolution / 2 + 1e-12
    assert q.min_value <= out <= q.max_value
