"""Tests for repro.decoder.recognizer (uses the session tiny task)."""

import numpy as np
import pytest

from repro.decoder.recognizer import Recognizer
from repro.decoder.fast_gmm import FastGmmConfig
from repro.lm.ngram import NGramModel
from repro.lm.vocabulary import Vocabulary
from repro.quant.float_formats import MANTISSA_12


class TestModes:
    def test_reference_mode_decodes(self, task):
        rec = Recognizer.create(
            task.dictionary, task.pool, task.lm, task.tying, mode="reference"
        )
        utt = task.corpus.test[0]
        result = rec.decode(utt.features)
        assert result.words == tuple(utt.words)
        assert result.frames == utt.num_frames
        assert result.op_unit_activities is None

    def test_hardware_mode_matches_reference(self, task):
        ref = Recognizer.create(
            task.dictionary, task.pool, task.lm, task.tying, mode="reference"
        )
        hw = Recognizer.create(
            task.dictionary, task.pool, task.lm, task.tying, mode="hardware"
        )
        for utt in task.corpus.test[:4]:
            assert hw.decode(utt.features).words == ref.decode(utt.features).words

    def test_hardware_mode_accounting(self, task):
        rec = Recognizer.create(
            task.dictionary, task.pool, task.lm, task.tying,
            mode="hardware", num_unit_pairs=2,
        )
        result = rec.decode(task.corpus.test[0].features)
        assert result.op_unit_activities is not None
        assert len(result.op_unit_activities) == 2
        assert result.viterbi_activity is not None
        assert result.frame_critical_cycles is not None
        assert len(result.frame_critical_cycles) == result.frames
        assert result.op_unit_activities[0]["cycles_busy"] > 0

    def test_fast_mode_decodes(self, task):
        rec = Recognizer.create(
            task.dictionary, task.pool, task.lm, task.tying,
            mode="fast",
            fast_config=FastGmmConfig(cds_enabled=True, pde_enabled=True),
        )
        utt = task.corpus.test[0]
        result = rec.decode(utt.features)
        assert result.words == tuple(utt.words)

    def test_quantized_storage_decodes(self, task):
        rec = Recognizer.create(
            task.dictionary, task.pool, task.lm, task.tying,
            mode="reference", storage_format=MANTISSA_12,
        )
        utt = task.corpus.test[0]
        assert rec.decode(utt.features).words == tuple(utt.words)

    def test_unknown_mode_rejected(self, task):
        with pytest.raises(ValueError):
            Recognizer.create(
                task.dictionary, task.pool, task.lm, task.tying, mode="quantum"
            )

    def test_vocab_mismatch_rejected(self, task):
        other = Vocabulary(["zzz"])
        lm = NGramModel(other, order=1)
        lm.train([["zzz"]])
        with pytest.raises(ValueError):
            Recognizer.create(task.dictionary, task.pool, lm, task.tying)


class TestResultMetrics:
    def test_active_senone_fraction_below_half(self, task):
        """The paper's R2 claim holds even on the tiny task."""
        rec = Recognizer.create(
            task.dictionary, task.pool, task.lm, task.tying, mode="reference"
        )
        result = rec.decode(task.corpus.test[0].features)
        assert 0.0 < result.mean_active_senone_fraction < 0.5

    def test_audio_seconds(self, task):
        rec = Recognizer.create(
            task.dictionary, task.pool, task.lm, task.tying, mode="reference"
        )
        result = rec.decode(task.corpus.test[0].features)
        assert result.audio_seconds == pytest.approx(result.frames * 0.010)

    def test_feature_validation(self, task):
        rec = Recognizer.create(
            task.dictionary, task.pool, task.lm, task.tying, mode="reference"
        )
        with pytest.raises(ValueError):
            rec.decode(np.zeros((10, 7)))
        with pytest.raises(ValueError):
            rec.decode(np.zeros((0, 39)))

    def test_recognizer_reusable_across_utterances(self, task):
        rec = Recognizer.create(
            task.dictionary, task.pool, task.lm, task.tying, mode="reference"
        )
        first = rec.decode(task.corpus.test[0].features)
        second = rec.decode(task.corpus.test[0].features)
        assert first.words == second.words
        assert first.score == pytest.approx(second.score)
