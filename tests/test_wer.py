"""Tests for repro.eval.wer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.wer import ErrorCounts, align_words, corpus_wer, word_error_rate

_WORDS = st.lists(st.sampled_from(["a", "b", "c", "d"]), max_size=8)


class TestAlignment:
    def test_perfect_match(self):
        counts = align_words(["a", "b", "c"], ["a", "b", "c"])
        assert counts.errors == 0
        assert counts.wer == 0.0

    def test_single_substitution(self):
        counts = align_words(["a", "b", "c"], ["a", "x", "c"])
        assert counts.substitutions == 1
        assert counts.errors == 1

    def test_single_deletion(self):
        counts = align_words(["a", "b", "c"], ["a", "c"])
        assert counts.deletions == 1

    def test_single_insertion(self):
        counts = align_words(["a", "c"], ["a", "b", "c"])
        assert counts.insertions == 1

    def test_empty_hypothesis(self):
        counts = align_words(["a", "b"], [])
        assert counts.deletions == 2
        assert counts.wer == 1.0

    def test_empty_reference(self):
        counts = align_words([], ["a"])
        assert counts.insertions == 1
        assert counts.wer == float("inf")

    def test_both_empty(self):
        assert align_words([], []).wer == 0.0

    def test_wer_can_exceed_one(self):
        counts = align_words(["a"], ["x", "y", "z"])
        assert counts.wer > 1.0

    def test_known_mixed_case(self):
        ref = "the cat sat on the mat".split()
        hyp = "the cat sit on mat quickly".split()
        counts = align_words(ref, hyp)
        # sit (sub), the deleted, quickly inserted.
        assert counts.errors == 3
        assert counts.wer == pytest.approx(0.5)


class TestErrorCounts:
    def test_addition(self):
        a = ErrorCounts(1, 2, 3, 10)
        b = ErrorCounts(0, 1, 0, 5)
        total = a + b
        assert total.errors == 7
        assert total.reference_length == 15

    def test_corpus_pooling(self):
        counts = corpus_wer([["a", "b"], ["c"]], [["a", "b"], ["x"]])
        assert counts.errors == 1
        assert counts.reference_length == 3

    def test_corpus_length_mismatch(self):
        with pytest.raises(ValueError):
            corpus_wer([["a"]], [])

    def test_word_error_rate_helper(self):
        assert word_error_rate(["a", "b"], ["a", "b"]) == 0.0
        assert word_error_rate(["a", "b"], ["a"]) == 0.5


@given(_WORDS, _WORDS)
@settings(max_examples=200, deadline=None)
def test_property_error_count_is_edit_distance(ref, hyp):
    """Errors equal the Levenshtein distance (unit costs)."""
    counts = align_words(ref, hyp)
    # Independent simple DP for the distance value.
    n, m = len(ref), len(hyp)
    dp = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n + 1):
        dp[i][0] = i
    for j in range(m + 1):
        dp[0][j] = j
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            dp[i][j] = min(
                dp[i - 1][j - 1] + (ref[i - 1] != hyp[j - 1]),
                dp[i - 1][j] + 1,
                dp[i][j - 1] + 1,
            )
    assert counts.errors == dp[n][m]


@given(_WORDS)
@settings(max_examples=100, deadline=None)
def test_property_zero_iff_equal(words):
    assert align_words(words, list(words)).errors == 0


@given(_WORDS, _WORDS, _WORDS)
@settings(max_examples=100, deadline=None)
def test_property_triangle_inequality(a, b, c):
    ab = align_words(a, b).errors
    bc = align_words(b, c).errors
    ac = align_words(a, c).errors
    assert ac <= ab + bc
