"""Tests for repro.core.processor."""

import pytest

from repro.core.processor import EmbeddedProcessor, SoftwareCosts


class TestCharging:
    def test_named_stage_accumulates(self):
        cpu = EmbeddedProcessor()
        cpu.charge("frontend", 1000)
        cpu.charge("frontend", 500)
        assert cpu.total_cycles == 1500
        stage = cpu.stages()[0]
        assert stage.invocations == 2

    def test_convenience_wrappers(self):
        cpu = EmbeddedProcessor()
        cpu.charge_frontend(frames=2)
        cpu.charge_word_decode(active_words=100)
        cpu.charge_lattice(entries=10)
        cpu.charge_best_path(edges=10)
        cpu.charge_feedback(phones=50)
        costs = cpu.costs
        expected = (
            2 * costs.frontend_per_frame
            + costs.word_decode_base_per_frame
            + 100 * costs.word_decode_per_active_word
            + 10 * costs.lattice_insert
            + 10 * costs.best_path_per_edge
            + 50 * costs.feedback_per_phone
        )
        assert cpu.total_cycles == expected

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            EmbeddedProcessor().charge("x", -1)

    def test_rejects_bad_clock(self):
        with pytest.raises(ValueError):
            EmbeddedProcessor(clock_hz=0)


class TestUtilization:
    def test_busy_seconds(self):
        cpu = EmbeddedProcessor(clock_hz=100e6)
        cpu.charge("x", 50_000_000)
        assert cpu.busy_seconds() == pytest.approx(0.5)

    def test_utilization(self):
        cpu = EmbeddedProcessor(clock_hz=100e6)
        cpu.charge("x", 10_000_000)
        assert cpu.utilization(1.0) == pytest.approx(0.1)

    def test_utilization_rejects_zero_elapsed(self):
        with pytest.raises(ValueError):
            EmbeddedProcessor().utilization(0.0)

    def test_frontend_is_lightweight(self):
        """Section III-A: the frontend 'is a lightweight process'."""
        cpu = EmbeddedProcessor()
        cpu.charge_frontend(frames=100)  # one second of audio
        assert cpu.utilization(1.0) < 0.05

    def test_reset_and_format(self):
        cpu = EmbeddedProcessor()
        cpu.charge_frontend()
        assert "frontend" in cpu.format()
        cpu.reset()
        assert cpu.total_cycles == 0

    def test_stages_sorted_by_cost(self):
        cpu = EmbeddedProcessor()
        cpu.charge("small", 10)
        cpu.charge("big", 1000)
        assert cpu.stages()[0].name == "big"

    def test_costs_frozen(self):
        costs = SoftwareCosts()
        with pytest.raises(Exception):
            costs.frontend_per_frame = 0  # type: ignore[misc]
