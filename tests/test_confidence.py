"""Tests for repro.decoder.confidence."""

import numpy as np
import pytest

from repro.decoder.confidence import WordConfidence, score_confidence
from repro.decoder.lattice import WordLattice
from repro.decoder.recognizer import Recognizer


@pytest.fixture(scope="module")
def decoded(task):
    rec = Recognizer.create(
        task.dictionary, task.pool, task.lm, task.tying, mode="reference"
    )
    utt = task.corpus.test[0]
    result = rec.decode(utt.features)
    return rec, result, utt


class TestScoreConfidence:
    def test_one_score_per_word(self, task, decoded):
        rec, result, utt = decoded
        scores = score_confidence(
            rec.word_stage.lattice, task.lm, rec.network, result.frames - 1
        )
        assert [s.word for s in scores] == list(result.words)

    def test_scores_in_unit_interval(self, task, decoded):
        rec, result, _ = decoded
        for s in score_confidence(
            rec.word_stage.lattice, task.lm, rec.network, result.frames - 1
        ):
            assert 0.0 <= s.confidence <= 1.0

    def test_correct_words_confident(self, task, decoded):
        """A clean correct decode should be confident throughout."""
        rec, result, utt = decoded
        scores = score_confidence(
            rec.word_stage.lattice, task.lm, rec.network, result.frames - 1
        )
        assert tuple(utt.words) == result.words
        assert min(s.confidence for s in scores) > 0.5

    def test_time_spans_are_ordered(self, task, decoded):
        rec, result, _ = decoded
        scores = score_confidence(
            rec.word_stage.lattice, task.lm, rec.network, result.frames - 1
        )
        for a, b in zip(scores, scores[1:]):
            assert a.exit_frame < b.exit_frame

    def test_empty_lattice(self, task, decoded):
        rec, _, _ = decoded
        assert score_confidence(WordLattice(), task.lm, rec.network, 10) == []

    def test_temperature_validation(self, task, decoded):
        rec, result, _ = decoded
        with pytest.raises(ValueError):
            score_confidence(
                rec.word_stage.lattice, task.lm, rec.network,
                result.frames - 1, temperature=0.0,
            )

    def test_confidence_dataclass_validates(self):
        with pytest.raises(ValueError):
            WordConfidence(word="x", entry_frame=0, exit_frame=1, confidence=1.5)

    def test_noisy_decode_less_confident(self, task):
        """Degrading the features lowers the minimum word confidence."""
        rec = Recognizer.create(
            task.dictionary, task.pool, task.lm, task.tying, mode="reference"
        )
        rng = np.random.default_rng(3)
        utt = task.corpus.test[1]
        clean = rec.decode(utt.features)
        clean_scores = score_confidence(
            rec.word_stage.lattice, task.lm, rec.network, clean.frames - 1
        )
        noisy_feats = utt.features + rng.normal(0, 6.0, size=utt.features.shape)
        noisy = rec.decode(noisy_feats)
        noisy_scores = score_confidence(
            rec.word_stage.lattice, task.lm, rec.network, noisy.frames - 1
        )
        if noisy_scores:  # the noisy decode may produce any words
            assert min(s.confidence for s in noisy_scores) <= min(
                s.confidence for s in clean_scores
            ) + 1e-9
