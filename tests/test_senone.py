"""Tests for repro.hmm.senone — the senone pool."""

import numpy as np
import pytest

from repro.hmm.senone import SenonePool
from repro.quant.float_formats import IEEE_SINGLE, MANTISSA_12, MANTISSA_15


class TestValidation:
    def test_shape_checks(self, rng):
        means = rng.normal(size=(4, 2, 3))
        with pytest.raises(ValueError):
            SenonePool(means, np.ones((4, 2, 2)), np.full((4, 2), 0.5))
        with pytest.raises(ValueError):
            SenonePool(means, np.ones((4, 2, 3)), np.full((4, 3), 0.5))

    def test_weight_normalization_required(self, rng):
        means = rng.normal(size=(2, 2, 3))
        with pytest.raises(ValueError):
            SenonePool(means, np.ones((2, 2, 3)), np.full((2, 2), 0.3))

    def test_negative_weights_rejected(self, rng):
        means = rng.normal(size=(1, 2, 3))
        weights = np.array([[1.5, -0.5]])
        with pytest.raises(ValueError):
            SenonePool(means, np.ones((1, 2, 3)), weights)


class TestScoring:
    def test_matches_mixture_view(self, small_pool, rng):
        obs = rng.normal(size=small_pool.dim)
        scores = small_pool.score_frame(obs)
        for senone in (0, 7, 23):
            gmm = small_pool.mixture(senone)
            assert float(gmm.log_prob(obs)) == pytest.approx(float(scores[senone]))

    def test_subset_scoring(self, small_pool, rng):
        obs = rng.normal(size=small_pool.dim)
        subset = np.array([2, 9])
        scores = small_pool.score_frame(obs, subset)
        assert np.isneginf(scores[0])
        full = small_pool.score_frame(obs)
        assert scores[2] == pytest.approx(full[2])

    def test_score_frames_matches_per_frame(self, small_pool, rng):
        frames = rng.normal(size=(5, small_pool.dim))
        batch = small_pool.score_frames(frames)
        assert batch.shape == (5, small_pool.num_senones)
        for t in range(5):
            assert np.allclose(batch[t], small_pool.score_frame(frames[t]))

    def test_wrong_dim_rejected(self, small_pool):
        with pytest.raises(ValueError):
            small_pool.score_frame(np.zeros(small_pool.dim + 1))
        with pytest.raises(ValueError):
            small_pool.score_frames(np.zeros((3, small_pool.dim + 1)))

    def test_mixture_out_of_range(self, small_pool):
        with pytest.raises(IndexError):
            small_pool.mixture(small_pool.num_senones)


class TestBlasScoring:
    def test_tables_are_senone_major_contiguous(self, small_pool):
        tables = small_pool.blas_tables()
        n, m, dim = (
            small_pool.num_senones, small_pool.num_components, small_pool.dim
        )
        assert tables.prec.shape == (n * m, dim)
        assert tables.mu_prec.shape == (n * m, dim)
        assert tables.const.shape == (n, m)
        assert tables.prec.flags["C_CONTIGUOUS"]
        assert tables.mu_prec.flags["C_CONTIGUOUS"]
        assert small_pool.blas_tables() is tables  # cached

    def test_full_block_matches_gathered_scores(self, small_pool, rng):
        frames = rng.normal(size=(4, small_pool.dim))
        dense = small_pool.score_block_blas(frames)
        gathered = small_pool.score_frames(frames)
        np.testing.assert_allclose(dense, gathered, atol=1e-9)

    def test_subset_block_matches_full_columns(self, small_pool, rng):
        frames = rng.normal(size=(3, small_pool.dim))
        subset = np.array([1, 5, 9, 20])
        dense = small_pool.score_block_blas(frames, subset)
        full = small_pool.score_block_blas(frames)
        # Same dot products; gathered vs full matrices may block
        # differently inside BLAS, so compare to rounding only.
        np.testing.assert_allclose(dense, full[:, subset], rtol=0, atol=1e-10)

    def test_empty_subset(self, small_pool, rng):
        out = small_pool.score_block_blas(
            rng.normal(size=(2, small_pool.dim)), np.empty(0, np.int64)
        )
        assert out.shape == (2, 0)

    def test_validation(self, small_pool):
        with pytest.raises(ValueError):
            small_pool.score_block_blas(np.zeros((2, small_pool.dim + 1)))
        with pytest.raises(IndexError):
            small_pool.score_block_blas(
                np.zeros((1, small_pool.dim)),
                np.array([small_pool.num_senones]),
            )


class TestStorage:
    def test_paper_full_scale_size(self):
        """6000 senones x 8 comp x 39 dims = 15.168 MB (Section IV-B)."""
        pool = SenonePool.random(10, 8, 39)  # layout only; scale the count
        per_senone = pool.values_per_senone
        assert per_senone == 8 * (2 * 39 + 1)
        full_bytes = IEEE_SINGLE.storage_bytes(6000 * per_senone)
        assert full_bytes / 1e6 == pytest.approx(15.168)

    def test_storage_scales_with_format(self, small_pool):
        full = small_pool.storage_bytes(IEEE_SINGLE)
        assert small_pool.storage_bytes(MANTISSA_15) == pytest.approx(full * 24 / 32)
        assert small_pool.storage_bytes(MANTISSA_12) == pytest.approx(full * 21 / 32)

    def test_gaussian_table_quantized_params(self, small_pool):
        table = small_pool.gaussian_table(MANTISSA_12)
        bits = table.means.view(np.uint32)
        assert not np.any(bits & np.uint32((1 << 11) - 1))
        assert table.storage_format is MANTISSA_12

    def test_quantized_pool_scores_close(self, small_pool, rng):
        obs = rng.normal(size=small_pool.dim)
        exact = small_pool.score_frame(obs)
        quantized = small_pool.quantized(MANTISSA_12).score_frame(obs)
        assert np.max(np.abs(exact - quantized)) < 0.5

    def test_quantized_pool_weights_renormalized(self, small_pool):
        q = small_pool.quantized(MANTISSA_12)
        assert np.allclose(q.weights.sum(axis=1), 1.0)


class TestRandomPool:
    def test_deterministic_with_seed(self):
        a = SenonePool.random(5, 2, 7, rng=np.random.default_rng(3))
        b = SenonePool.random(5, 2, 7, rng=np.random.default_rng(3))
        assert np.array_equal(a.means, b.means)

    def test_shapes(self):
        pool = SenonePool.random(11, 3, 5)
        assert pool.num_senones == 11
        assert pool.num_components == 3
        assert pool.dim == 5
