"""Tests for repro.decoder.lattice_tools."""

import pytest

from repro.decoder.lattice import WordLattice
from repro.decoder.lattice_tools import analyze_lattice, oracle_paths, prune_lattice
from repro.decoder.network import FlatLexiconNetwork
from repro.decoder.phone_decode import PhoneDecodeStage
from repro.decoder.recognizer import Recognizer
from repro.decoder.scorer import ReferenceScorer
from repro.decoder.word_decode import WordDecodeStage


@pytest.fixture()
def decoded(task):
    """A real decode's lattice plus its reference transcript."""
    rec = Recognizer.create(
        task.dictionary, task.pool, task.lm, task.tying, mode="reference"
    )
    utt = task.corpus.test[0]
    rec.decode(utt.features)
    return rec.word_stage.lattice, rec.network, list(utt.words), utt.num_frames - 1


class TestAnalyze:
    def test_oracle_at_most_best(self, decoded):
        lattice, network, reference, final = decoded
        report = analyze_lattice(lattice, network, reference, final)
        assert report.oracle_wer <= report.best_wer
        assert report.exits == len(lattice)
        assert report.density > 0

    def test_correct_decode_zero_oracle(self, decoded):
        lattice, network, reference, final = decoded
        report = analyze_lattice(lattice, network, reference, final)
        assert report.best_wer == 0.0
        assert report.oracle_wer == 0.0

    def test_oracle_paths_contain_best(self, decoded):
        lattice, network, reference, final = decoded
        paths = oracle_paths(lattice, network, final)
        assert tuple(reference) in paths

    def test_empty_lattice(self, decoded):
        _, network, reference, final = decoded
        report = analyze_lattice(WordLattice(), network, reference, final)
        assert report.oracle_wer == 1.0
        assert report.exits == 0

    def test_format(self, decoded):
        lattice, network, reference, final = decoded
        text = analyze_lattice(lattice, network, reference, final).format()
        assert "oracle" in text and "density" in text


class TestPrune:
    def test_pruned_lattice_keeps_best_path(self, decoded):
        lattice, network, reference, final = decoded
        pruned = prune_lattice(lattice, beam=5.0, final_frame=final)
        assert len(pruned) <= len(lattice)
        report = analyze_lattice(pruned, network, reference, final)
        assert report.best_wer == 0.0  # the winning path survived

    def test_tight_beam_shrinks(self, decoded):
        lattice, network, _, final = decoded
        tight = prune_lattice(lattice, beam=1.0, final_frame=final)
        loose = prune_lattice(lattice, beam=500.0, final_frame=final)
        assert len(tight) <= len(loose)
        assert len(loose) == len(lattice)

    def test_predecessor_chains_closed(self, decoded):
        lattice, _, _, final = decoded
        pruned = prune_lattice(lattice, beam=2.0, final_frame=final)
        for i in range(len(pruned)):
            record = pruned.exit(i)
            if record.predecessor >= 0:
                pruned.exit(record.predecessor)  # must not raise

    def test_rejects_bad_beam(self, decoded):
        lattice, _, _, final = decoded
        with pytest.raises(ValueError):
            prune_lattice(lattice, beam=0.0, final_frame=final)


class TestDensityKnob:
    def test_max_exits_controls_density(self, task):
        """`max_exits_per_frame` trades lattice density for size."""
        from repro.decoder.word_decode import DecoderConfig

        utt = task.corpus.test[1]
        sizes = {}
        for cap in (2, 24):
            rec = Recognizer.create(
                task.dictionary, task.pool, task.lm, task.tying,
                mode="reference", config=DecoderConfig(max_exits_per_frame=cap),
            )
            rec.decode(utt.features)
            sizes[cap] = len(rec.word_stage.lattice)
        assert 0 < sizes[2] <= sizes[24]
