"""Tests for repro.core.logadd — the 512-byte SRAM logadd unit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.logadd import LOG2, LogAddTable, logadd_exact


class TestTableConstruction:
    def test_paper_sram_size(self):
        table = LogAddTable()
        assert table.num_entries == 256
        assert table.value_bits == 16
        assert table.sram_bytes == 512

    def test_entries_are_16bit_fractions(self):
        table = LogAddTable()
        scaled = table._entries * 2.0**16
        assert np.allclose(scaled, np.rint(scaled))
        assert np.all(table._entries >= 0.0)
        assert np.all(table._entries < LOG2 + 2.0**-16)

    def test_entries_monotone_decreasing(self):
        table = LogAddTable()
        assert np.all(np.diff(table._entries) <= 0)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            LogAddTable(num_entries=1)
        with pytest.raises(ValueError):
            LogAddTable(value_bits=0)
        with pytest.raises(ValueError):
            LogAddTable(max_difference=-1.0)


class TestCorrection:
    def test_zero_difference(self):
        table = LogAddTable()
        # d ~ 0 -> correction ~ log 2.
        assert float(table.correction(0.0)) == pytest.approx(LOG2, abs=0.03)

    def test_beyond_range_is_zero_without_read(self):
        table = LogAddTable()
        table.reset_reads()
        assert float(table.correction(50.0)) == 0.0
        assert table.reads == 0

    def test_reads_counted(self):
        table = LogAddTable()
        table.reset_reads()
        table.correction(np.array([0.5, 1.0, 100.0]))
        assert table.reads == 2

    def test_rejects_negative_difference(self):
        with pytest.raises(ValueError):
            LogAddTable().correction(-0.1)

    def test_error_bound(self):
        table = LogAddTable()
        assert table.max_error() <= table.theoretical_error_bound()

    def test_finer_table_is_more_accurate(self):
        coarse = LogAddTable(num_entries=64)
        fine = LogAddTable(num_entries=1024)
        assert fine.max_error() < coarse.max_error()


class TestLogAdd:
    def test_matches_exact_within_bound(self):
        table = LogAddTable()
        rng = np.random.default_rng(0)
        a = rng.uniform(-50, 0, size=1000)
        b = rng.uniform(-50, 0, size=1000)
        approx = table.logadd(a, b)
        exact = logadd_exact(a, b)
        assert np.max(np.abs(approx - exact)) <= table.theoretical_error_bound()

    def test_commutative(self):
        table = LogAddTable()
        assert float(table.logadd(-3.0, -7.0)) == float(table.logadd(-7.0, -3.0))

    def test_result_at_least_max_operand(self):
        table = LogAddTable()
        rng = np.random.default_rng(1)
        a = rng.uniform(-100, 0, size=500)
        b = rng.uniform(-100, 0, size=500)
        out = table.logadd(a, b)
        assert np.all(out >= np.maximum(a, b))

    def test_neg_inf_identity(self):
        table = LogAddTable()
        assert float(table.logadd(-np.inf, -5.0)) == -5.0
        assert float(table.logadd(-5.0, -np.inf)) == -5.0

    def test_both_neg_inf(self):
        table = LogAddTable()
        assert np.isneginf(table.logadd(-np.inf, -np.inf))

    def test_logadd_many_vs_exact(self):
        table = LogAddTable()
        rng = np.random.default_rng(2)
        values = rng.uniform(-30, -1, size=8)
        approx = table.logadd_many(values)
        exact = float(np.log(np.exp(values).sum()))
        # Serial folding accumulates at most (n-1) table errors.
        assert abs(approx - exact) <= 7 * table.theoretical_error_bound()

    def test_logadd_many_single(self):
        table = LogAddTable()
        assert table.logadd_many(np.array([-4.2])) == -4.2

    def test_logadd_many_empty_raises(self):
        with pytest.raises(ValueError):
            LogAddTable().logadd_many(np.array([]))

    def test_vectorized_matches_scalar(self):
        table = LogAddTable()
        a = np.array([-1.0, -2.0, -3.0])
        b = np.array([-4.0, -0.5, -3.0])
        vec = table.logadd(a, b)
        for i in range(3):
            assert float(table.logadd(a[i], b[i])) == pytest.approx(float(vec[i]))


@given(
    st.floats(min_value=-80, max_value=0, allow_nan=False),
    st.floats(min_value=-80, max_value=0, allow_nan=False),
)
@settings(max_examples=300, deadline=None)
def test_property_logadd_bounds(log_a, log_b):
    """max(a,b) <= logadd(a,b) <= max(a,b) + log2 + eps."""
    table = LogAddTable()
    out = float(table.logadd(log_a, log_b))
    hi = max(log_a, log_b)
    assert hi <= out <= hi + LOG2 + table.theoretical_error_bound()


@given(st.lists(st.floats(min_value=-40, max_value=-1, allow_nan=False), min_size=2, max_size=12))
@settings(max_examples=100, deadline=None)
def test_property_logadd_many_close_to_exact(values):
    table = LogAddTable()
    approx = table.logadd_many(np.asarray(values))
    exact = float(np.log(np.sum(np.exp(values))))
    assert abs(approx - exact) <= len(values) * table.theoretical_error_bound()
