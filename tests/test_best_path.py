"""Tests for repro.decoder.best_path."""

import pytest

from repro.decoder.best_path import find_best_path, n_best_paths
from repro.decoder.lattice import WordLattice
from repro.decoder.network import FlatLexiconNetwork
from repro.lexicon.dictionary import PronunciationDictionary
from repro.lexicon.triphone import SenoneTying
from repro.lm.ngram import NGramModel
from repro.lm.vocabulary import Vocabulary


@pytest.fixture()
def world():
    d = PronunciationDictionary()
    d.add("kaet", ("K", "AE", "T"))
    d.add("dig", ("D", "IH", "G"))
    tying = SenoneTying(num_senones=51 * 3)
    network = FlatLexiconNetwork.build(d, tying)
    vocab = Vocabulary(list(d.words()))
    lm = NGramModel(vocab, order=2)
    lm.train([["kaet", "dig"], ["dig"], ["kaet"]])
    return network, lm


class TestFindBestPath:
    def test_empty_lattice(self, world):
        network, lm = world
        assert find_best_path(WordLattice(), lm, network, 10) is None

    def test_single_exit(self, world):
        network, lm = world
        lat = WordLattice()
        kaet = network.words.index("kaet")
        lat.add(word=kaet, entry_frame=0, exit_frame=9, predecessor=-1,
                score=-40.0, lm_history=kaet)
        best = find_best_path(lat, lm, network, 9)
        assert best is not None
        assert best.words == ("kaet",)
        assert best.score < -40.0  # eos term is negative

    def test_prefers_higher_scoring_final_exit(self, world):
        network, lm = world
        lat = WordLattice()
        kaet = network.words.index("kaet")
        dig = network.words.index("dig")
        lat.add(word=kaet, entry_frame=0, exit_frame=9, predecessor=-1,
                score=-40.0, lm_history=kaet)
        lat.add(word=dig, entry_frame=0, exit_frame=9, predecessor=-1,
                score=-90.0, lm_history=dig)
        best = find_best_path(lat, lm, network, 9)
        assert best.words == ("kaet",)

    def test_falls_back_to_earlier_frame(self, world):
        network, lm = world
        lat = WordLattice()
        kaet = network.words.index("kaet")
        lat.add(word=kaet, entry_frame=0, exit_frame=5, predecessor=-1,
                score=-40.0, lm_history=kaet)
        best = find_best_path(lat, lm, network, final_frame=30)
        assert best is not None and best.words == ("kaet",)

    def test_silence_filtered_from_words(self, world):
        network, lm = world
        lat = WordLattice()
        kaet = network.words.index("kaet")
        first = lat.add(word=kaet, entry_frame=0, exit_frame=5, predecessor=-1,
                        score=-40.0, lm_history=kaet)
        lat.add(word=network.silence_word, entry_frame=6, exit_frame=9,
                predecessor=first, score=-50.0, lm_history=kaet)
        best = find_best_path(lat, lm, network, 9)
        assert best.words == ("kaet",)
        assert len(best.exits) == 2

    def test_multi_word_backtrace(self, world):
        network, lm = world
        lat = WordLattice()
        kaet = network.words.index("kaet")
        dig = network.words.index("dig")
        first = lat.add(word=kaet, entry_frame=0, exit_frame=5, predecessor=-1,
                        score=-40.0, lm_history=kaet)
        lat.add(word=dig, entry_frame=6, exit_frame=12, predecessor=first,
                score=-80.0, lm_history=dig)
        best = find_best_path(lat, lm, network, 12)
        assert best.words == ("kaet", "dig")


class TestNBest:
    def test_ordering_and_count(self, world):
        network, lm = world
        lat = WordLattice()
        kaet = network.words.index("kaet")
        dig = network.words.index("dig")
        lat.add(word=kaet, entry_frame=0, exit_frame=9, predecessor=-1,
                score=-40.0, lm_history=kaet)
        lat.add(word=dig, entry_frame=0, exit_frame=9, predecessor=-1,
                score=-45.0, lm_history=dig)
        paths = n_best_paths(lat, lm, network, 9, n=5)
        assert len(paths) == 2
        assert paths[0].score >= paths[1].score

    def test_n_validation(self, world):
        network, lm = world
        with pytest.raises(ValueError):
            n_best_paths(WordLattice(), lm, network, 0, n=0)

    def test_empty(self, world):
        network, lm = world
        assert n_best_paths(WordLattice(), lm, network, 5) == []
