"""Property tests for continuous batching (mid-decode lane refill).

The scheduler only decides WHEN a lane is reseeded; it must never
change WHAT a lane computes.  These tests drive
``ContinuousBatchRecognizer.decode_stream`` with seeded-random ragged
lengths, arrival orders and lane budgets (1..8) and require every
utterance's words, path score, per-frame statistics and lattice size
to be bit-identical to a sequential ``Recognizer.decode`` of the same
features — in reference and hardware modes, including the degenerate
single-lane queue.
"""

import numpy as np
import pytest

from repro.decoder.recognizer import Recognizer
from repro.runtime import ContinuousBatchRecognizer, LaneBank

N_TRIALS = 3
MIN_FRAMES = 5


@pytest.fixture(scope="module", params=["reference", "hardware"])
def trio(request, task):
    """A sequential recognizer, its continuous twin, and a decode cache.

    The cache maps ``(utterance_index, length)`` to the sequential
    result so repeated trials don't re-decode identical truncations.
    """
    rec = Recognizer.create(
        task.dictionary, task.pool, task.lm, task.tying, mode=request.param
    )
    return rec, rec.as_continuous(), {}


def _sequential(rec, base, cache, utt_index, length):
    key = (utt_index, length)
    if key not in cache:
        cache[key] = rec.decode(base[utt_index][:length])
    return cache[key]


def _assert_lane_equal(seq, lane):
    assert lane.words == seq.words
    assert lane.score == seq.score  # bit-identical, not approx
    assert lane.frames == seq.frames
    assert lane.lattice_size == seq.lattice_size
    assert [f.__dict__ for f in lane.frame_stats] == [
        f.__dict__ for f in seq.frame_stats
    ]
    assert lane.scoring_stats.active_per_frame == seq.scoring_stats.active_per_frame
    assert lane.fast_stats == seq.fast_stats  # None outside fast mode


class TestContinuousEquivalence:
    def test_random_ragged_arrival_orders(self, trio, task):
        """Random lengths x arrival orders x lane budgets == sequential."""
        rec, cont, cache = trio
        base = [u.features for u in task.corpus.test]
        rng = np.random.default_rng(2024)
        for _ in range(N_TRIALS):
            order = rng.permutation(len(base))
            lengths = [
                int(rng.integers(MIN_FRAMES, base[i].shape[0] + 1)) for i in order
            ]
            feats = [base[i][:n] for i, n in zip(order, lengths)]
            max_lanes = int(rng.integers(1, 9))
            result = cont.decode_stream(feats, max_lanes=max_lanes)
            assert len(result) == len(feats)
            for (i, n), lane in zip(zip(order, lengths), result):
                _assert_lane_equal(_sequential(rec, base, cache, int(i), n), lane)

    def test_single_lane_queue_degenerates_to_sequential(self, trio, task):
        """max_lanes=1 is pure sequential decoding through the bank."""
        rec, cont, cache = trio
        base = [u.features for u in task.corpus.test[:4]]
        result = cont.decode_stream(base, max_lanes=1)
        assert result.max_lanes == 1
        assert result.steps == sum(f.shape[0] for f in base)
        assert result.utilization == 1.0
        for i, lane in enumerate(result):
            _assert_lane_equal(
                _sequential(rec, base, cache, i, base[i].shape[0]), lane
            )

    def test_generator_queue_is_consumed_lazily(self, trio, task):
        """The waiting queue may be a generator; admission pulls from it."""
        rec, cont, cache = trio
        base = [u.features for u in task.corpus.test[:5]]
        pulled = []

        def queue():
            for i, f in enumerate(base):
                pulled.append(i)
                yield f

        result = cont.decode_stream(queue(), max_lanes=2)
        assert pulled == list(range(5))
        for i, lane in enumerate(result):
            _assert_lane_equal(
                _sequential(rec, base, cache, i, base[i].shape[0]), lane
            )

    def test_duplicate_utterances_any_lane_agree(self, trio, task):
        """The same features produce the same output in every lane."""
        _, cont, _ = trio
        f = task.corpus.test[1].features
        result = cont.decode_stream([f] * 5, max_lanes=2)
        first = result[0]
        for lane in result:
            assert lane.words == first.words and lane.score == first.score

    def test_reusable_across_streams(self, trio, task):
        _, cont, _ = trio
        feats = [u.features for u in task.corpus.test[:3]]
        a = cont.decode_stream(feats, max_lanes=2)
        b = cont.decode_stream(feats, max_lanes=3)
        for x, y in zip(a, b):
            assert x.words == y.words and x.score == y.score


class TestScheduling:
    def test_refill_happens_mid_decode(self, trio, task):
        """With fewer lanes than utterances, lanes must be refilled."""
        _, cont, _ = trio
        feats = [u.features for u in task.corpus.test]
        result = cont.decode_stream(feats, max_lanes=2)
        assert result.max_lanes == 2
        assert len(result.admit_steps) == len(feats)
        assert len(result.lane_of) == len(feats)
        late = [s for s in result.admit_steps if s > 0]
        assert len(late) == len(feats) - 2  # everything past the seed pair
        assert result.admit_steps == sorted(result.admit_steps)  # FIFO
        assert set(result.lane_of) <= {0, 1}

    def test_results_in_submission_order(self, trio, task):
        """A long utterance first must not displace later short ones."""
        rec, cont, cache = trio
        base = [u.features for u in task.corpus.test[:4]]
        order = sorted(range(4), key=lambda i: -base[i].shape[0])
        feats = [base[i] for i in order]
        result = cont.decode_stream(feats, max_lanes=2)
        for i, lane in zip(order, result):
            _assert_lane_equal(
                _sequential(rec, base, cache, i, base[i].shape[0]), lane
            )
            assert lane.frames == base[i].shape[0]

    def test_more_lanes_than_utterances_shrinks_bank(self, trio, task):
        _, cont, _ = trio
        feats = [u.features for u in task.corpus.test[:3]]
        result = cont.decode_stream(feats, max_lanes=8)
        assert result.max_lanes == 3
        assert result.admit_steps == [0, 0, 0]

    def test_continuous_beats_drain_utilization(self, trio, task):
        """Refilled lanes waste fewer slots than drain-to-longest."""
        _, cont, _ = trio
        base = [u.features for u in task.corpus.test]
        # Strongly ragged: a long utterance next to heavily cut ones.
        feats = [f if i % 2 else f[: max(5, f.shape[0] // 4)] for i, f in enumerate(base)]
        stream = cont.decode_stream(feats, max_lanes=4)
        drained = cont.decode_batch(feats[:4])
        assert stream.utilization > drained.utilization
        assert stream.frames_processed == sum(f.shape[0] for f in feats)

    def test_hardware_accounting_present(self, task):
        rec = Recognizer.create(
            task.dictionary, task.pool, task.lm, task.tying, mode="hardware"
        )
        cont = rec.as_continuous()
        feats = [u.features for u in task.corpus.test[:4]]
        result = cont.decode_stream(feats, max_lanes=2)
        assert result.op_unit_activities is not None
        assert result.viterbi_activity is not None
        assert result.frame_critical_cycles is not None
        assert len(result.frame_critical_cycles) == result.steps


class TestValidationAndLifecycle:
    def test_rejects_empty_stream(self, trio):
        _, cont, _ = trio
        with pytest.raises(ValueError):
            cont.decode_stream([], max_lanes=4)

    def test_rejects_bad_lane_budget(self, trio, task):
        _, cont, _ = trio
        with pytest.raises(ValueError):
            cont.decode_stream([task.corpus.test[0].features], max_lanes=0)

    def test_rejects_bad_shapes_mid_stream(self, trio, task):
        _, cont, _ = trio
        good = task.corpus.test[0].features
        with pytest.raises(ValueError):
            cont.decode_stream([good, np.zeros((10, 7))], max_lanes=1)
        with pytest.raises(ValueError):
            cont.decode_stream([np.zeros((0, good.shape[1]))], max_lanes=2)

    def test_rejects_none_in_queue(self, trio, task):
        """A None element must error, not be silently dropped."""
        _, cont, _ = trio
        good = task.corpus.test[0].features
        with pytest.raises(ValueError):
            cont.decode_stream([good, None, good], max_lanes=1)

    def test_unknown_mode_error_names_supported_modes(self, task):
        with pytest.raises(ValueError) as err:
            ContinuousBatchRecognizer.create(
                task.dictionary, task.pool, task.lm, task.tying, mode="turbo"
            )
        message = str(err.value)
        assert "turbo" in message
        for mode in ("'reference'", "'hardware'", "'fast'"):
            assert mode in message

    def test_drained_queue_compacts_bank(self, trio, task):
        """Once the queue drains, the tail must not step dead lanes.

        The bank width seen by the pooled scorer has to shrink to the
        number of live lanes (down to 1 for the longest straggler),
        and every utterance's output must be unchanged by the
        relocations.
        """
        rec, cont, cache = trio
        base = [u.features for u in task.corpus.test[:4]]
        longest = max(range(4), key=lambda i: base[i].shape[0])
        # One full-length straggler, three short lanes; queue == lanes,
        # so it is drained immediately after seeding.
        feats = [f if i == longest else f[:9] for i, f in enumerate(base)]
        widths = []
        orig = cont.scorer.score_pairs

        def spy(observations, pair_rows, pair_senones, lanes=None):
            widths.append(observations.shape[0])
            return orig(observations, pair_rows, pair_senones, lanes=lanes)

        cont.scorer.score_pairs = spy
        try:
            result = cont.decode_stream(feats, max_lanes=4)
        finally:
            cont.scorer.score_pairs = orig
        assert widths[0] == 4
        assert widths[-1] == 1  # the straggler finished in a 1-lane bank
        assert all(a >= b for a, b in zip(widths, widths[1:]))  # monotone shrink
        # Tail steps did exactly one lane's work, not max_lanes' worth.
        assert widths.count(1) >= feats[longest].shape[0] - 10
        for i, lane in enumerate(result):
            _assert_lane_equal(
                _sequential(rec, base, cache, i, feats[i].shape[0]), lane
            )

    def test_compact_shrinks_lane_bank_state(self, trio, task):
        """Direct LaneBank lifecycle: retire -> compact -> keep decoding."""
        rec, cont, cache = trio
        feats = [
            np.asarray(task.corpus.test[0].features, dtype=np.float64),
            np.asarray(task.corpus.test[1].features[:6], dtype=np.float64),
        ]
        bank = LaneBank(cont, 2)
        bank.admit(0, 0, feats[0])
        bank.admit(1, 1, feats[1])
        results = {}
        while bank.any_active:
            for lane in bank.step():
                utt = int(bank.lane_utt[lane])
                results[utt] = bank.retire(lane)
            if bank.compact() == 1:
                assert bank.delta.shape[0] == 1
                assert bank.active.shape == (1,)
                assert len(bank.lattices) == 1
        assert bank.num_lanes == 1  # shrank once lane 1 finished
        for i, f in enumerate(feats):
            _assert_lane_equal(rec.decode(f), results[i])

    def test_lane_bank_lifecycle_guards(self, trio, task):
        """admit/step/retire enforce the lane lifecycle contract."""
        _, cont, _ = trio
        f = np.asarray(task.corpus.test[0].features, dtype=np.float64)
        bank = LaneBank(cont, 2)
        with pytest.raises(RuntimeError):
            bank.step()  # nothing admitted
        with pytest.raises(RuntimeError):
            bank.retire(0)  # nothing to retire
        bank.admit(0, 0, f)
        with pytest.raises(RuntimeError):
            bank.admit(0, 1, f)  # occupied
        with pytest.raises(RuntimeError):
            bank.retire(0)  # mid-utterance
        assert bank.free_lanes() == [1]
        with pytest.raises(ValueError):
            LaneBank(cont, 0)
