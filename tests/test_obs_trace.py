"""Trace propagation through the serving stack.

Covers, per the PR's acceptance criteria:

* the forked worker's engine loop builds a per-job worker trace —
  ``worker.queue`` + ``decode`` with per-stage children — that is
  well-nested and monotonic even under an injectable loop clock;
* the async front door merges its spans (``request``, ``queue.wait``,
  ``dispatch``) with the shard's into one tree on
  :attr:`ServeResult.trace`, under the id the request carried in;
* THE cross-process propagation test: a wire client mints the
  ``trace_id``, a forked 2-shard server threads it through admission,
  dispatch and the child process's decode, and the result event comes
  back with the SAME id and a merged tree whose cross-process
  timestamps nest — ``time.monotonic`` is system-wide on Linux;
* ``metrics_text`` ships the Prometheus exposition over the wire;
* the server's latency series are bounded histograms, not per-request
  lists (the O(1)-memory guarantee at the serving layer);
* tracing off (``tracing=False``) strips traces without touching the
  decode.

No pytest-asyncio dependency: async tests run under ``asyncio.run``.
"""

import asyncio
import queue

import pytest

from repro.decoder import Recognizer
from repro.obs import LogHistogram, Trace
from repro.runtime.serving import (
    STOP,
    DecodeJob,
    JobDone,
    ServeLoop,
    ServeStopped,
)
from repro.serve import ServeClient, Server, WireServer


@pytest.fixture(scope="module")
def recognizer(task):
    return Recognizer.create(
        task.dictionary, task.pool, task.lm, task.tying
    )


@pytest.fixture(scope="module")
def workload(task, recognizer):
    features = []
    for utt in task.corpus.test:
        features.append(utt.features)
        features.append(utt.features[: max(40, utt.features.shape[0] // 2)])
    baselines = [recognizer.decode(f) for f in features]
    return features, baselines


def run_traced_loop(rec, jobs, max_lanes=2, clock=None, **kwargs):
    inbox = queue.Queue()
    for job in jobs:
        inbox.put(job)
    inbox.put(STOP)
    events = []
    if clock is not None:
        kwargs["clock"] = clock
    loop = ServeLoop(rec.as_batch(), max_lanes=max_lanes, **kwargs)
    loop.run(inbox, events.append)
    return events


class TickClock:
    """One tick per call — injectable, strictly monotonic."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


def assert_well_nested(trace: Trace) -> None:
    """Every span is monotonic and lies inside its parent's window."""
    by_name = {s.name: s for s in trace.spans}
    assert trace.spans, "trace has no spans"
    for span in trace.spans:
        assert span.end_s >= span.start_s, span
        if span.parent is not None and span.parent in by_name:
            parent = by_name[span.parent]
            assert parent.start_s <= span.start_s + 1e-9, (span, parent)
            assert span.end_s <= parent.end_s + 1e-9, (span, parent)


# ----------------------------------------------------------------------
# Worker half: the engine loop's per-job trace
# ----------------------------------------------------------------------
class TestWorkerTraces:
    def test_worker_trace_spans_are_well_nested(self, recognizer, workload):
        features, _ = workload
        jobs = [
            DecodeJob(i, features[i], enqueued_at=0.0, trace_id=f"trace-{i}")
            for i in range(3)
        ]
        events = run_traced_loop(recognizer, jobs, worker_id=7)
        done = {e.utt_id: e.result for e in events if isinstance(e, JobDone)}
        assert set(done) == {0, 1, 2}
        for utt, result in done.items():
            trace = result.trace
            assert trace is not None
            # The job's trace_id came straight through the loop.
            assert trace.trace_id == f"trace-{utt}"
            assert trace.utt_id == utt
            assert_well_nested(trace)
            names = {s.name for s in trace.spans}
            assert {"worker.queue", "decode"} <= names
            # The stage split rides under the decode span.
            assert "decode.scoring" in names
            assert "decode.token_update" in names
            assert "decode.word_exit" in names
            for span in trace.spans:
                assert span.worker == 7
            # worker.queue hands off exactly where decode begins.
            q = trace.span("worker.queue")
            d = trace.span("decode")
            assert q.end_s == d.start_s
            # Stage children tile the decode window monotonically.
            stages = [s for s in trace.spans if s.parent == "decode"]
            stages.sort(key=lambda s: s.start_s)
            assert stages[0].start_s >= d.start_s
            assert stages[-1].end_s <= d.end_s + 1e-9
            for a, b in zip(stages, stages[1:]):
                assert b.start_s >= a.end_s - 1e-9

    def test_trace_survives_injected_clock(self, recognizer, workload):
        """A synthetic loop clock (ticks) coexists with the bank's real
        stamps: spans stay monotonic and well-nested regardless."""
        features, _ = workload
        jobs = [DecodeJob(0, features[0], enqueued_at=0.0, trace_id="tick-0")]
        events = run_traced_loop(
            recognizer, jobs, max_lanes=1, clock=TickClock(), worker_id=0
        )
        [done] = [e for e in events if isinstance(e, JobDone)]
        trace = done.result.trace
        assert trace.trace_id == "tick-0"
        assert_well_nested(trace)
        assert trace.render()  # renders without a request root

    def test_tracing_off_strips_traces_not_decodes(
        self, recognizer, workload
    ):
        features, baselines = workload
        jobs = [DecodeJob(0, features[0], enqueued_at=0.0)]
        events = run_traced_loop(recognizer, jobs, tracing=False)
        [done] = [e for e in events if isinstance(e, JobDone)]
        assert done.result.trace is None
        assert done.result.words == baselines[0].words
        assert done.result.score == baselines[0].score  # bit-exact

    def test_loop_reports_shard_telemetry(self, recognizer, workload):
        features, _ = workload
        jobs = [DecodeJob(i, features[i], enqueued_at=0.0) for i in range(2)]
        events = run_traced_loop(recognizer, jobs)
        done = [e for e in events if isinstance(e, JobDone)]
        total_frames = sum(e.result.telemetry.frames for e in done)
        assert total_frames == sum(features[i].shape[0] for i in range(2))
        for e in done:
            tel = e.result.telemetry
            assert tel.active_states > 0
            assert tel.senones_scored > 0
            assert tel.stage_total_s > 0.0
        # The loop's own final stats roll the same counters up per shard.
        [stopped] = [e for e in events if isinstance(e, ServeStopped)]
        assert stopped.stats.telemetry.frames == total_frames


# ----------------------------------------------------------------------
# Front door: merged request trees on ServeResult
# ----------------------------------------------------------------------
class TestServerTraces:
    def test_request_tree_merges_both_halves(self, recognizer, workload):
        features, _ = workload

        async def scenario():
            async with Server(
                recognizer, num_workers=2, max_lanes=2
            ) as server:
                sessions = [server.submit(f) for f in features[:4]]
                return [await s.result() for s in sessions]

        results = asyncio.run(scenario())
        for result in results:
            assert result.ok
            trace = result.trace
            assert trace is not None
            assert_well_nested(trace)
            names = {s.name for s in trace.spans}
            # Front-door spans + the shard's, one tree.
            assert {
                "request", "queue.wait", "dispatch",
                "worker.queue", "decode",
            } <= names
            # No wire hop in-process: no wire.receive span.
            assert "wire.receive" not in names
            # Worker-side spans carry the serving shard's label; the
            # front door's carry none.
            assert trace.span("decode").worker == result.worker
            assert trace.span("request").worker is None
            assert trace.span("request").parent is None
            rendered = trace.render()
            assert "request" in rendered and "decode.scoring" in rendered

    def test_latency_series_are_bounded_histograms(
        self, recognizer, workload
    ):
        """The serving layer keeps NO per-request latency storage —
        the unbounded-deque bug stays fixed."""
        features, _ = workload

        async def scenario():
            async with Server(
                recognizer, num_workers=1, max_lanes=2
            ) as server:
                for hist in (
                    server._latency_hist,
                    server._wait_hist,
                    server._shed_wait_hist,
                ):
                    assert isinstance(hist, LogHistogram)
                footprint = len(server._latency_hist.counts)
                await server.submit(features[0]).result()
                # Synthetic completions: drive the metrics path 10k
                # times without 10k decodes.
                for i in range(10_000):
                    server._latency_hist.record(0.01 + (i % 97) * 1e-4)
                assert len(server._latency_hist.counts) == footprint
                metrics = server.metrics()
                assert metrics.latency_p99_s >= metrics.latency_p50_s > 0.0
                assert server._latency_hist.count == 10_001

        asyncio.run(scenario())

    def test_fleet_telemetry_rolls_up_per_worker(self, recognizer, workload):
        features, _ = workload

        async def scenario():
            async with Server(
                recognizer, num_workers=2, max_lanes=2
            ) as server:
                sessions = [server.submit(f) for f in features[:4]]
                for s in sessions:
                    assert (await s.result()).ok
                for _ in range(200):
                    metrics = server.metrics()
                    if metrics.telemetry and metrics.telemetry.frames >= sum(
                        features[i].shape[0] for i in range(4)
                    ):
                        return metrics
                    await asyncio.sleep(0.02)
                return server.metrics()

        metrics = asyncio.run(scenario())
        fleet = metrics.telemetry
        assert fleet is not None
        assert fleet.frames == sum(features[i].shape[0] for i in range(4))
        assert fleet.senones_scored > 0
        per_worker = [
            w.telemetry for w in metrics.workers if w.telemetry is not None
        ]
        assert sum(t.frames for t in per_worker) == fleet.frames


# ----------------------------------------------------------------------
# THE cross-process wire test: client-minted id, forked shards, one tree
# ----------------------------------------------------------------------
class TestWireTraces:
    def test_trace_id_survives_client_to_forked_shard_and_back(
        self, recognizer, workload
    ):
        features, _ = workload

        async def scenario():
            async with Server(
                recognizer,
                num_workers=2,
                max_lanes=2,
                use_processes=True,  # forked shards: separate processes
            ) as server:
                async with WireServer(server) as wire:
                    async with await ServeClient.connect(
                        wire.host, wire.port
                    ) as client:
                        tickets = [
                            await client.submit(f) for f in features[:6]
                        ]
                        results = [await t.result() for t in tickets]
                        return [
                            (t.trace_id, r) for t, r in zip(tickets, results)
                        ]

        pairs = asyncio.run(scenario())
        workers_seen = set()
        for minted, result in pairs:
            assert result.ok
            trace = result.trace
            assert trace is not None
            # The id the CLIENT minted is the id the tree came back
            # under — one trace across three processes.
            assert minted is not None
            assert trace.trace_id == minted
            assert_well_nested(trace)
            names = {s.name for s in trace.spans}
            assert {
                "request", "wire.receive", "queue.wait", "dispatch",
                "worker.queue", "decode", "decode.scoring",
            } <= names
            # The forked worker's spans land inside the server-side
            # request window: monotonic stamps merge across fork.
            request = trace.span("request")
            decode = trace.span("decode")
            assert request.start_s <= decode.start_s
            assert decode.end_s <= request.end_s + 1e-9
            assert decode.worker == result.worker
            workers_seen.add(decode.worker)
            # Telemetry rode the same result event.
            assert result.telemetry is not None
            assert result.telemetry.frames > 0
        assert workers_seen == {0, 1}, "both shards should have decoded"

    def test_metrics_text_over_the_wire(self, recognizer, workload):
        features, _ = workload

        async def scenario():
            async with Server(
                recognizer, num_workers=1, max_lanes=2
            ) as server:
                async with WireServer(server) as wire:
                    async with await ServeClient.connect(
                        wire.host, wire.port
                    ) as client:
                        for f in features[:3]:
                            assert (await client.decode(f)).ok
                        return await client.metrics_text()

        text = asyncio.run(scenario())
        assert "# TYPE repro_serve_completed_total counter" in text
        assert "repro_serve_completed_total 3" in text
        assert "# TYPE repro_serve_latency_seconds histogram" in text
        assert 'repro_serve_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_serve_worker_alive" in text
        assert "repro_serve_decode_telemetry_total" in text
