"""Tests for repro.decoder.word_decode — token passing mechanics."""

import numpy as np
import pytest

from repro.decoder.beam import BeamConfig
from repro.decoder.network import FlatLexiconNetwork
from repro.decoder.phone_decode import PhoneDecodeStage
from repro.decoder.recognizer import Recognizer
from repro.decoder.scorer import ReferenceScorer
from repro.decoder.word_decode import DecoderConfig, WordDecodeStage
from repro.hmm.senone import SenonePool
from repro.lexicon.dictionary import PronunciationDictionary
from repro.lexicon.triphone import SenoneTying
from repro.lm.ngram import NGramModel
from repro.lm.vocabulary import Vocabulary


@pytest.fixture()
def micro_world():
    """Two acoustically trivial words over a planted senone pool."""
    tying = SenoneTying(num_senones=51 * 3, states_per_hmm=3)  # CI only
    d = PronunciationDictionary()
    d.add("kaet", ("K", "AE", "T"))
    d.add("dig", ("D", "IH", "G"))
    rng = np.random.default_rng(0)
    dim = 8
    # Plant each senone's mean at a distinct corner so frames sampled
    # from a senone's mean are decisively scored.
    pool = SenonePool.random(tying.num_senones, 2, dim, rng=rng, spread=4.0)
    vocab = Vocabulary(list(d.words()))
    lm = NGramModel(vocab, order=2)
    lm.train([["kaet", "dig"], ["dig", "kaet"], ["kaet"], ["dig"]])
    network = FlatLexiconNetwork.build(d, tying)
    return d, tying, pool, lm, network


def _frames_for_word(network, pool, word_index, frames_per_state=3):
    """Feature frames tracing one word's states through their means."""
    frames = []
    for state in network.states_of_word(word_index):
        senone = network.senone_id[state]
        mean = pool.means[senone, 0]
        for _ in range(frames_per_state):
            frames.append(mean)
    return np.asarray(frames)


class TestDecodeMechanics:
    def test_decodes_planted_word(self, micro_world):
        d, tying, pool, lm, network = micro_world
        config = DecoderConfig(silence_penalty=-200.0)  # keep sil out
        stage = WordDecodeStage(
            network, lm, PhoneDecodeStage(ReferenceScorer(pool)), config
        )
        word = network.words.index("kaet")
        for frame in _frames_for_word(network, pool, word):
            stage.process_frame(frame)
        exits = stage.lattice.exits_at(stage.frames_processed - 1)
        assert exits, "the planted word must exit on the final frame"
        best = max(exits, key=lambda e: e.score)
        assert best.word == word

    def test_entry_frame_tracks_token(self, micro_world):
        d, tying, pool, lm, network = micro_world
        stage = WordDecodeStage(
            network, lm, PhoneDecodeStage(ReferenceScorer(pool)), DecoderConfig()
        )
        word = network.words.index("dig")
        for frame in _frames_for_word(network, pool, word):
            stage.process_frame(frame)
        exits = stage.lattice.exits_at(stage.frames_processed - 1)
        best = max(exits, key=lambda e: e.score)
        assert best.entry_frame == 0

    def test_frame_stats_recorded(self, micro_world):
        d, tying, pool, lm, network = micro_world
        stage = WordDecodeStage(
            network, lm, PhoneDecodeStage(ReferenceScorer(pool)), DecoderConfig()
        )
        word = network.words.index("kaet")
        frames = _frames_for_word(network, pool, word)
        for frame in frames:
            stage.process_frame(frame)
        assert len(stage.frame_stats) == len(frames)
        assert all(s.requested_senones > 0 for s in stage.frame_stats)

    def test_feedback_requests_fewer_senones_than_budget(self, micro_world):
        d, tying, pool, lm, network = micro_world
        stage = WordDecodeStage(
            network,
            lm,
            PhoneDecodeStage(ReferenceScorer(pool), use_feedback=True),
            DecoderConfig(beam=BeamConfig(state_beam=30.0, word_beam=30.0)),
        )
        word = network.words.index("kaet")
        for frame in _frames_for_word(network, pool, word):
            stage.process_frame(frame)
        # With a tight beam, requested senones shrink after frame 0.
        later = [s.requested_senones for s in stage.frame_stats[2:]]
        assert max(later) < tying.num_senones

    def test_no_feedback_scores_everything(self, micro_world):
        d, tying, pool, lm, network = micro_world
        stage = WordDecodeStage(
            network,
            lm,
            PhoneDecodeStage(ReferenceScorer(pool), use_feedback=False),
            DecoderConfig(),
        )
        word = network.words.index("kaet")
        stage.process_frame(_frames_for_word(network, pool, word)[0])
        assert stage.frame_stats[0].requested_senones == tying.num_senones

    def test_reset_clears_state(self, micro_world):
        d, tying, pool, lm, network = micro_world
        stage = WordDecodeStage(
            network, lm, PhoneDecodeStage(ReferenceScorer(pool)), DecoderConfig()
        )
        word = network.words.index("kaet")
        for frame in _frames_for_word(network, pool, word):
            stage.process_frame(frame)
        stage.reset()
        assert stage.frames_processed == 0
        assert len(stage.lattice) == 0
        assert not stage.frame_stats

    def test_vocab_mismatch_rejected(self, micro_world):
        d, tying, pool, lm, network = micro_world
        other_vocab = Vocabulary(["one", "two", "three"])
        other_lm = NGramModel(other_vocab, order=1)
        other_lm.train([["one"]])
        with pytest.raises(ValueError):
            WordDecodeStage(
                network, other_lm, PhoneDecodeStage(ReferenceScorer(pool)),
                DecoderConfig(),
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DecoderConfig(lm_scale=0.0)
        with pytest.raises(ValueError):
            DecoderConfig(max_exits_per_frame=0)


class TestSilenceTransparency:
    def test_silence_exit_inherits_lm_history(self, micro_world):
        d, tying, pool, lm, network = micro_world
        config = DecoderConfig(silence_penalty=0.0)
        stage = WordDecodeStage(
            network, lm, PhoneDecodeStage(ReferenceScorer(pool)), config
        )
        word = network.words.index("kaet")
        frames = list(_frames_for_word(network, pool, word))
        # Append silence frames after the word.
        sil_state = network.states_of_word(network.silence_word)
        for state in sil_state:
            mean = pool.means[network.senone_id[state], 0]
            frames.extend([mean, mean])
        for frame in frames:
            stage.process_frame(frame)
        sil_exits = [
            e
            for t in range(stage.frames_processed)
            for e in stage.lattice.exits_at(t)
            if e.word == network.silence_word
        ]
        assert sil_exits
        # The silence exit's LM history is the preceding word.
        inherited = {e.lm_history for e in sil_exits if e.predecessor >= 0}
        assert word in inherited


class TestTwoWordSequence:
    def test_decodes_word_pair(self, micro_world):
        d, tying, pool, lm, network = micro_world
        config = DecoderConfig(silence_penalty=-200.0)
        stage = WordDecodeStage(
            network, lm, PhoneDecodeStage(ReferenceScorer(pool)), config
        )
        first = network.words.index("kaet")
        second = network.words.index("dig")
        frames = np.vstack(
            [_frames_for_word(network, pool, first), _frames_for_word(network, pool, second)]
        )
        for frame in frames:
            stage.process_frame(frame)
        exits = stage.lattice.exits_at(stage.frames_processed - 1)
        best = max(exits, key=lambda e: e.score)
        chain = stage.lattice.backtrace(best.index)
        words = [e.word for e in chain if e.word != network.silence_word]
        assert words == [first, second]
