"""Tests for repro.core.opunit — the Observation Probability unit."""

import numpy as np
import pytest

from repro.core.opunit import LOG_ZERO, GaussianTable, OpUnit, OpUnitSpec
from repro.core.pipeline import PipelineTrace
from repro.quant.float_formats import MANTISSA_12


@pytest.fixture()
def unit_and_table(small_pool):
    unit = OpUnit(OpUnitSpec(feature_dim=small_pool.dim))
    table = small_pool.gaussian_table()
    return unit, table


class TestSpec:
    def test_cycles_per_senone_structure(self):
        spec = OpUnitSpec(feature_dim=39)
        # 8 components: stream of 312 dims + FMA tail + 7 logadds.
        cycles = spec.cycles_per_senone(8)
        stream = spec.sdm_pipeline.cycles(8 * 39)
        tail = spec.fma_pipeline.depth + spec.logadd_pipeline.cycles(7)
        assert cycles == stream + tail

    def test_cycles_monotone_in_components(self):
        spec = OpUnitSpec(feature_dim=39)
        assert spec.cycles_per_senone(8) > spec.cycles_per_senone(4)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            OpUnitSpec(clock_hz=0)
        with pytest.raises(ValueError):
            OpUnitSpec(feature_dim=0)
        with pytest.raises(ValueError):
            OpUnitSpec(feature_dim=100, feature_buffer_words=64)

    def test_rejects_zero_components(self):
        with pytest.raises(ValueError):
            OpUnitSpec().cycles_per_senone(0)

    def test_realtime_budget_consistency(self):
        """The paper's sizing: ~45% of 6000 senones on 2 units fits 10 ms."""
        spec = OpUnitSpec(feature_dim=39)
        per_senone = spec.cycles_per_senone(8)
        budget = int(spec.clock_hz * 0.010)
        senones_per_unit_frame = budget // per_senone
        # Two units must together cover > 2400 senones (40%).
        assert 2 * senones_per_unit_frame > 2400


class TestGaussianTable:
    def test_shapes_validated(self, small_pool):
        table = small_pool.gaussian_table()
        with pytest.raises(ValueError):
            GaussianTable(table.means, table.precisions[:, :1], table.offsets)
        with pytest.raises(ValueError):
            GaussianTable(table.means, table.precisions, table.offsets[:, :1])

    def test_rejects_positive_precisions(self, small_pool):
        table = small_pool.gaussian_table()
        with pytest.raises(ValueError):
            GaussianTable(table.means, -table.precisions, table.offsets)

    def test_storage_accounting(self, small_pool):
        table = small_pool.gaussian_table()
        values = small_pool.num_components * (2 * small_pool.dim + 1)
        assert table.values_per_senone == values
        assert table.senone_bytes() == values * 4
        assert table.storage_bytes() == small_pool.num_senones * values * 4

    def test_quantized_table(self, small_pool):
        table = small_pool.gaussian_table()
        narrow = table.quantized(MANTISSA_12)
        assert narrow.storage_format is MANTISSA_12
        assert narrow.senone_bytes() == table.values_per_senone * 21 / 8

    def test_senone_major_packed_relayout(self, small_pool):
        """means/precisions/offsets are views into one contiguous block."""
        table = small_pool.gaussian_table()
        dim = table.feature_dim
        assert table.packed.flags["C_CONTIGUOUS"]
        assert table.packed.shape == (
            table.num_senones, table.num_components, 2 * dim + 1
        )
        for view in (table.means, table.precisions, table.offsets):
            assert view.base is table.packed
        np.testing.assert_array_equal(table.packed[..., :dim], table.means)
        np.testing.assert_array_equal(
            table.packed[..., dim : 2 * dim], table.precisions
        )
        np.testing.assert_array_equal(table.packed[..., 2 * dim], table.offsets)

    def test_packed_relayout_preserves_values(self, small_pool):
        """Round-tripping the views through a new table changes nothing."""
        table = small_pool.gaussian_table()
        rebuilt = GaussianTable(table.means, table.precisions, table.offsets)
        np.testing.assert_array_equal(rebuilt.packed, table.packed)


class TestSerialScoring:
    def test_matches_reference_within_logadd_error(self, small_pool, rng):
        unit = OpUnit(OpUnitSpec(feature_dim=small_pool.dim))
        table = small_pool.gaussian_table()
        obs = rng.normal(size=small_pool.dim)
        reference = small_pool.score_frame(obs)
        unit.load_feature(obs)
        bound = (small_pool.num_components - 1) * unit.logadd.theoretical_error_bound()
        for senone in range(small_pool.num_senones):
            hw = unit.score_senone(table, senone)
            assert abs(hw - reference[senone]) <= bound + 5e-3  # + float32 rounding

    def test_cycles_accumulate(self, unit_and_table, rng):
        unit, table = unit_and_table
        unit.load_feature(rng.normal(size=table.feature_dim))
        unit.score_senone(table, 0)
        expected = unit.spec.cycles_per_senone(table.num_components)
        assert unit.cycles_busy == expected
        unit.score_senone(table, 1)
        assert unit.cycles_busy == 2 * expected

    def test_running_max_register(self, unit_and_table, rng):
        unit, table = unit_and_table
        unit.load_feature(rng.normal(size=table.feature_dim))
        scores = [unit.score_senone(table, s) for s in range(5)]
        assert unit.running_max == pytest.approx(max(scores))

    def test_pde_prunes_dims(self, small_pool, rng):
        unit = OpUnit(OpUnitSpec(feature_dim=small_pool.dim))
        table = small_pool.gaussian_table()
        obs = rng.normal(size=small_pool.dim)
        unit.load_feature(obs)
        unit.score_senone(table, 0)
        full_dims = unit.dims_evaluated
        unit.reset_counters()
        unit.load_feature(obs)
        unit.score_senone(table, 0, prune_threshold=-10.0)
        assert unit.dims_evaluated <= full_dims

    def test_pde_reduces_cycles(self, small_pool, rng):
        unit = OpUnit(OpUnitSpec(feature_dim=small_pool.dim))
        table = small_pool.gaussian_table()
        obs = rng.normal(scale=10.0, size=small_pool.dim)  # far from means
        unit.load_feature(obs)
        unit.score_senone(table, 0, prune_threshold=-5.0)
        pruned_cycles = unit.cycles_busy
        unit.reset_counters()
        unit.load_feature(obs)
        unit.score_senone(table, 0)
        assert pruned_cycles <= unit.cycles_busy

    def test_feature_length_validated(self, unit_and_table):
        unit, _ = unit_and_table
        with pytest.raises(ValueError):
            unit.load_feature(np.zeros(7))

    def test_senone_range_validated(self, unit_and_table, rng):
        unit, table = unit_and_table
        unit.load_feature(rng.normal(size=table.feature_dim))
        with pytest.raises(IndexError):
            unit.score_senone(table, table.num_senones)

    def test_trace_records(self, small_pool, rng):
        trace = PipelineTrace()
        unit = OpUnit(OpUnitSpec(feature_dim=small_pool.dim), trace=trace)
        table = small_pool.gaussian_table()
        unit.load_feature(rng.normal(size=small_pool.dim))
        unit.score_senone(table, 3)
        assert trace.events and "senone[3]" in trace.events[0].item


class TestBatchScoring:
    def test_matches_serial(self, small_pool, rng):
        obs = rng.normal(size=small_pool.dim)
        table = small_pool.gaussian_table()
        serial_unit = OpUnit(OpUnitSpec(feature_dim=small_pool.dim))
        serial_unit.load_feature(obs)
        serial = np.array(
            [serial_unit.score_senone(table, s) for s in range(table.num_senones)]
        )
        batch_unit = OpUnit(OpUnitSpec(feature_dim=small_pool.dim))
        batch = batch_unit.score_frame(table, obs).scores
        # Same logadd table and component order; only the dim-loop
        # float32 summation order differs.
        assert np.max(np.abs(batch - serial)) < 1e-3

    def test_subset_scoring(self, unit_and_table, rng):
        unit, table = unit_and_table
        active = np.array([1, 5, 7])
        result = unit.score_frame(table, rng.normal(size=table.feature_dim), active)
        assert result.senones_scored == 3
        scored = result.scores > LOG_ZERO / 2
        assert scored.sum() == 3
        assert set(np.flatnonzero(scored)) == {1, 5, 7}

    def test_empty_active(self, unit_and_table, rng):
        unit, table = unit_and_table
        result = unit.score_frame(table, rng.normal(size=table.feature_dim), np.array([], dtype=np.int64))
        assert result.cycles == 0 and result.senones_scored == 0

    def test_cycles_match_formula(self, unit_and_table, rng):
        unit, table = unit_and_table
        result = unit.score_frame(table, rng.normal(size=table.feature_dim))
        expected = table.num_senones * unit.spec.cycles_per_senone(table.num_components)
        assert result.cycles == expected

    def test_bandwidth_accounting(self, unit_and_table, rng):
        unit, table = unit_and_table
        unit.score_frame(table, rng.normal(size=table.feature_dim))
        assert unit.parameter_bytes == table.num_senones * table.senone_bytes()

    def test_out_of_range_active_rejected(self, unit_and_table, rng):
        unit, table = unit_and_table
        with pytest.raises(IndexError):
            unit.score_frame(
                table, rng.normal(size=table.feature_dim), np.array([999999])
            )

    def test_activity_snapshot(self, unit_and_table, rng):
        unit, table = unit_and_table
        unit.score_frame(table, rng.normal(size=table.feature_dim))
        act = unit.activity()
        n, m, dim = table.num_senones, table.num_components, table.feature_dim
        assert act["sdm_ops"] == n * m * dim
        assert act["fma_ops"] == n * m
        assert act["senones"] == n
        assert act["cycles_busy"] == unit.cycles_busy

    def test_reset_counters(self, unit_and_table, rng):
        unit, table = unit_and_table
        unit.score_frame(table, rng.normal(size=table.feature_dim))
        unit.reset_counters()
        assert unit.cycles_busy == 0
        assert unit.activity()["sdm_ops"] == 0


class TestQuantizedScoring:
    def test_narrow_storage_changes_little(self, small_pool, rng):
        obs = rng.normal(size=small_pool.dim)
        wide = OpUnit(OpUnitSpec(feature_dim=small_pool.dim))
        narrow = OpUnit(OpUnitSpec(feature_dim=small_pool.dim))
        full = wide.score_frame(small_pool.gaussian_table(), obs).scores
        q12 = narrow.score_frame(
            small_pool.gaussian_table(MANTISSA_12), obs
        ).scores
        # 12-bit mantissa storage moves scores by far less than a beam.
        assert np.max(np.abs(full - q12)) < 1.0
