"""Tests for repro.core.fpu — the arithmetic datapath blocks."""

import numpy as np
import pytest

from repro.core.fpu import FloatUnit, OpCounts
from repro.quant.float_formats import MANTISSA_12


class TestBlocks:
    def test_square_diff_multiply(self):
        fpu = FloatUnit()
        out = fpu.square_diff_multiply(3.0, 1.0, 0.5)
        assert float(out) == pytest.approx(2.0)

    def test_square_diff_multiply_vector(self):
        fpu = FloatUnit()
        x = np.array([1.0, 2.0], dtype=np.float32)
        y = np.array([0.0, 0.0], dtype=np.float32)
        z = np.array([1.0, 2.0], dtype=np.float32)
        out = fpu.square_diff_multiply(x, y, z)
        assert np.allclose(out, [1.0, 8.0])

    def test_add(self):
        fpu = FloatUnit()
        assert float(fpu.add(1.25, 2.5)) == 3.75

    def test_fma_single_rounding(self):
        fpu = FloatUnit()
        out = fpu.fused_multiply_add(2.0, 3.0, 1.0)
        assert float(out) == 7.0

    def test_compare_max(self):
        fpu = FloatUnit()
        assert float(fpu.compare_max(-3.0, -1.0)) == -1.0

    def test_accumulate_order(self):
        fpu = FloatUnit()
        values = np.array([1e8, 1.0, -1e8], dtype=np.float32)
        # Serial left-to-right float32: 1e8 + 1 == 1e8 (absorbed).
        assert fpu.accumulate(values) == 0.0

    def test_accumulate_initial(self):
        fpu = FloatUnit()
        assert fpu.accumulate(np.array([1.0, 2.0]), initial=10.0) == 13.0


class TestCounting:
    def test_counts_scalar_ops(self):
        fpu = FloatUnit()
        fpu.square_diff_multiply(1.0, 2.0, 3.0)
        fpu.add(1.0, 2.0)
        fpu.fused_multiply_add(1.0, 2.0, 3.0)
        fpu.compare_max(1.0, 2.0)
        c = fpu.counts
        assert (c.square_diff_multiply, c.add, c.fused_multiply_add, c.compare) == (
            1,
            1,
            1,
            1,
        )
        assert c.total() == 4

    def test_counts_vector_ops(self):
        fpu = FloatUnit()
        fpu.add(np.zeros(7, dtype=np.float32), np.ones(7, dtype=np.float32))
        assert fpu.counts.add == 7

    def test_reset(self):
        fpu = FloatUnit()
        fpu.add(1.0, 1.0)
        fpu.reset()
        assert fpu.counts.total() == 0

    def test_snapshot_is_independent(self):
        fpu = FloatUnit()
        fpu.add(1.0, 1.0)
        snap = fpu.counts.snapshot()
        fpu.add(1.0, 1.0)
        assert snap.add == 1
        assert fpu.counts.add == 2

    def test_opcounts_reset(self):
        c = OpCounts(square_diff_multiply=3, add=2, fused_multiply_add=1, compare=9)
        c.reset()
        assert c.total() == 0


class TestNarrowCompute:
    def test_results_rounded_to_format(self):
        fpu = FloatUnit(compute_format=MANTISSA_12)
        out = fpu.add(np.float32(1.0), np.float32(2.0**-20))
        # The tiny addend is below the 12-bit mantissa resolution.
        assert float(out) == 1.0

    def test_narrow_differs_from_full(self):
        full = FloatUnit()
        narrow = FloatUnit(compute_format=MANTISSA_12)
        a, b = np.float32(1.0), np.float32(1.0 + 2**-11 + 2**-13)
        assert float(full.add(a, b)) != float(narrow.add(a, b))
