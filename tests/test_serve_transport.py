"""The wire transport (`repro.serve.transport` + `repro.serve.client`).

Covers, per the PR's acceptance criteria:

* the frame codec (length-prefixed JSON header + raw ndarray payload)
  round-trips arrays BIT-exactly and rejects malformed frames;
* loopback client/server: decode parity with sequential baselines,
  pipelined submits, typed `AdmissionRejected` (queue_full and
  client_quota across two connections), streaming sessions with
  partials and endpoint auto-finish over the socket, the metrics op;
* a client disconnecting mid-stream has its unresolved work cancelled
  without disturbing other connections;
* THE cross-process integration: a child process connects to a
  sharded (forked) server through a real socket, decodes bit-identical
  to sequential, and over-capacity submits come back as typed
  rejections — never silence.

No pytest-asyncio dependency: async tests run under ``asyncio.run``.
"""

import asyncio
import json
import os
import struct
import sys

import numpy as np
import pytest

from repro.decoder import Recognizer
from repro.serve import AdmissionRejected, ServeClient, Server, WireServer
from repro.serve.transport import (
    FrameError,
    decode_array,
    encode_array,
    frame_bytes,
    read_frame,
    write_frame,
)


@pytest.fixture(scope="module")
def recognizer(task):
    return Recognizer.create(
        task.dictionary, task.pool, task.lm, task.tying
    )


@pytest.fixture(scope="module")
def workload(task, recognizer):
    features = []
    for utt in task.corpus.test:
        features.append(utt.features)
        features.append(utt.features[: max(40, utt.features.shape[0] // 2)])
    baselines = [recognizer.decode(f) for f in features]
    return features, baselines


class _BufferWriter:
    """Just enough of a StreamWriter for write_frame."""

    def __init__(self):
        self.buf = b""

    def write(self, data: bytes) -> None:
        self.buf += data


# ----------------------------------------------------------------------
# Frame codec: bit-exact arrays, malformed-frame rejection
# ----------------------------------------------------------------------
class TestFrameCodec:
    @pytest.mark.parametrize(
        "arr",
        [
            np.linspace(-1e9, 1e9, 39, dtype=np.float64).reshape(3, 13),
            np.arange(7, dtype=np.int16),
            np.array([[np.pi]], dtype=np.float32),
            np.zeros((0, 13)),
        ],
    )
    def test_array_roundtrip_is_bit_exact(self, arr):
        meta, payload = encode_array(arr)
        back = decode_array(meta, payload)
        assert back.dtype == arr.dtype and back.shape == arr.shape
        np.testing.assert_array_equal(
            back.view(np.uint8), arr.view(np.uint8)
        )

    def test_noncontiguous_array_roundtrip(self):
        arr = np.arange(24, dtype=np.float64).reshape(4, 6)[:, ::2]
        meta, payload = encode_array(arr)
        np.testing.assert_array_equal(decode_array(meta, payload), arr)

    def test_bad_array_descriptions_raise_frame_error(self):
        meta, payload = encode_array(np.zeros((2, 3)))
        with pytest.raises(FrameError):
            decode_array({"shape": [2, 3]}, payload)  # no dtype
        with pytest.raises(FrameError):
            decode_array({"shape": [2, 4], "dtype": "<f8"}, payload)
        with pytest.raises(FrameError):
            decode_array({"shape": [2, 3], "dtype": "nope"}, payload)
        assert decode_array(meta, payload).shape == (2, 3)

    def test_frame_roundtrip_and_garbage_rejection(self):
        async def scenario():
            meta, payload = encode_array(np.arange(6, dtype=np.float64))
            header = {"op": "submit", "id": 3, **meta}
            writer = _BufferWriter()
            write_frame(writer, header, payload)

            reader = asyncio.StreamReader()
            reader.feed_data(writer.buf)
            got_header, got_payload = await read_frame(reader)
            assert got_header == json.loads(json.dumps(header))
            assert got_payload == payload

            # Garbage JSON in the header is a FrameError, not a crash.
            bad = asyncio.StreamReader()
            junk = b"\x00\x00\x00\x04\x00\x00\x00\x00...."[:8] + b"@#$%"
            bad.feed_data(junk)
            with pytest.raises(FrameError):
                await read_frame(bad)

            # An absurd announced size is refused before allocation.
            huge = asyncio.StreamReader()
            huge.feed_data(b"\x7f\xff\xff\xff\x7f\xff\xff\xff")
            with pytest.raises(FrameError):
                await read_frame(huge)

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Loopback: one process, real sockets
# ----------------------------------------------------------------------
class TestWireLoopback:
    def test_decode_parity_and_pipelining(self, recognizer, workload):
        features, baselines = workload

        async def scenario():
            async with Server(
                recognizer, num_workers=1, max_lanes=4, max_queue=64
            ) as server:
                async with WireServer(server) as wire:
                    async with await ServeClient.connect(
                        wire.host, wire.port
                    ) as client:
                        assert client.hello["protocol"] == 1
                        assert client.hello["network"] == "flat"
                        tickets = [
                            await client.submit(f) for f in features[:8]
                        ]
                        results = [await t.result() for t in tickets]
                        for result, base in zip(results, baselines):
                            assert result.ok
                            assert result.words == base.words
                            assert result.score == base.score  # bit-exact
                            assert result.latency_s > 0.0

        asyncio.run(scenario())

    def test_rejection_is_typed_over_the_wire(self, recognizer, workload):
        features, _ = workload

        async def scenario():
            async with Server(
                recognizer,
                num_workers=1,
                max_lanes=1,
                worker_backlog=0,
                max_queue=1,
            ) as server:
                async with WireServer(server) as wire:
                    async with await ServeClient.connect(
                        wire.host, wire.port
                    ) as client:
                        first = await client.submit(features[0])
                        second = await client.submit(features[1])
                        with pytest.raises(AdmissionRejected) as err:
                            await client.submit(features[2])
                        assert err.value.reason == "queue_full"
                        assert err.value.queue_depth == 1
                        assert err.value.max_queue == 1
                        assert (await first.result()).ok
                        assert (await second.result()).ok

        asyncio.run(scenario())

    def test_client_quota_across_connections(self, recognizer, workload):
        """Two named connections contend for the queue; the greedy one
        is shed with a typed client_quota rejection while the other
        still gets in."""
        features, _ = workload

        async def scenario():
            async with Server(
                recognizer,
                num_workers=1,
                max_lanes=1,
                worker_backlog=0,
                max_queue=4,
            ) as server:
                async with WireServer(server) as wire:
                    a = await ServeClient.connect(
                        wire.host, wire.port, client="tenant-a"
                    )
                    b = await ServeClient.connect(
                        wire.host, wire.port, client="tenant-b"
                    )
                    blocker = await a.submit(features[0])
                    held = [
                        await a.submit(features[1]),
                        await a.submit(features[1]),
                        await b.submit(features[1]),
                    ]
                    with pytest.raises(AdmissionRejected) as err:
                        await a.submit(features[1])
                    assert err.value.reason == "client_quota"
                    held.append(await b.submit(features[1]))
                    for ticket in [blocker, *held]:
                        assert (await ticket.result()).ok
                    await a.close()
                    await b.close()

        asyncio.run(scenario())

    def test_streaming_partials_and_endpoint(self, task, recognizer):
        utt = task.corpus.test[0]
        sil = task.pool.means[task.tying.ci_senone("SIL", 0), 0]
        feats = np.vstack([utt.features, np.tile(sil, (60, 1))])
        partials = []

        async def scenario():
            async with Server(
                recognizer, num_workers=1, max_lanes=2
            ) as server:
                async with WireServer(server) as wire:
                    async with await ServeClient.connect(
                        wire.host, wire.port
                    ) as client:
                        stream = await client.open_stream(
                            on_partial=lambda words, frame: partials.append(
                                (frame, words)
                            ),
                            partial_interval=15,
                            endpoint_silence_frames=25,
                        )
                        for start in range(0, feats.shape[0], 20):
                            if await stream.send_frames(
                                feats[start : start + 20]
                            ):
                                break
                        result = await stream.result()
                        assert result.ok
                        assert result.words == tuple(utt.words)

        asyncio.run(scenario())
        assert partials, "expected partial hypotheses over the wire"

    def test_stream_without_endpointing_finishes_explicitly(
        self, recognizer, workload
    ):
        features, baselines = workload

        async def scenario():
            async with Server(
                recognizer, num_workers=1, max_lanes=2
            ) as server:
                async with WireServer(server) as wire:
                    async with await ServeClient.connect(
                        wire.host, wire.port
                    ) as client:
                        stream = await client.open_stream()
                        feats = features[0]
                        for start in range(0, feats.shape[0], 25):
                            await stream.send_frames(
                                feats[start : start + 25]
                            )
                        result = await stream.result()
                        assert result.ok
                        assert result.words == baselines[0].words
                        assert result.score == baselines[0].score

        asyncio.run(scenario())

    def test_metrics_op_reports_server_state(self, recognizer, workload):
        features, _ = workload

        async def scenario():
            async with Server(
                recognizer, num_workers=1, max_lanes=2
            ) as server:
                async with WireServer(server) as wire:
                    async with await ServeClient.connect(
                        wire.host, wire.port
                    ) as client:
                        for f in features[:3]:
                            assert (await client.decode(f)).ok
                        snapshot = await client.metrics()
                        assert snapshot["submitted"] == 3
                        assert snapshot["completed"] == 3
                        assert snapshot["scoring_mode"] == "reference"
                        assert snapshot["network"] == "flat"
                        assert snapshot["worker_backlog"] >= 0
                        assert len(snapshot["workers"]) == 1
                        assert snapshot["latency_p95_s"] > 0.0
                        # The resilience counters ride the same op.
                        assert snapshot["retries"] == 0
                        assert snapshot["reconnects"] == 0
                        assert snapshot["faults_injected"] == 0
                        assert snapshot["brownout_transitions"] == 0
                        assert snapshot["brownout_active"] is False
                        assert snapshot["workers"][0]["health"] == 1.0

        asyncio.run(scenario())

    def test_deadline_miss_is_a_typed_result(self, recognizer, workload):
        features, _ = workload

        async def scenario():
            async with Server(
                recognizer, num_workers=1, max_lanes=2
            ) as server:
                async with WireServer(server) as wire:
                    async with await ServeClient.connect(
                        wire.host, wire.port
                    ) as client:
                        result = await client.decode(
                            features[0], deadline_s=0.0
                        )
                        assert result.status.value == "timeout"
                        assert result.words is None

        asyncio.run(scenario())

    def test_disconnect_mid_stream_cancels_server_side(
        self, recognizer, workload
    ):
        """A client that vanishes mid-stream (and with a submitted job
        outstanding) must not leak sessions: its work is cancelled and
        other connections keep decoding."""
        features, baselines = workload

        async def scenario():
            async with Server(
                recognizer,
                num_workers=1,
                max_lanes=1,
                worker_backlog=0,
                max_queue=8,
            ) as server:
                async with WireServer(server) as wire:
                    rude = await ServeClient.connect(wire.host, wire.port)
                    stream = await rude.open_stream()
                    await stream.send_frames(features[0][:30])
                    queued = await rude.submit(features[0])
                    assert queued is not None
                    await rude.close()  # mid-stream, job unresolved

                    # The server notices EOF and cancels the leftovers.
                    for _ in range(400):
                        m = server.metrics()
                        if (
                            m.cancelled + m.completed >= 1
                            and m.queue_depth == 0
                            and not server._sessions
                        ):
                            break
                        await asyncio.sleep(0.01)
                    assert not server._sessions
                    assert server.metrics().queue_depth == 0

                    # A polite neighbour is unaffected.
                    async with await ServeClient.connect(
                        wire.host, wire.port
                    ) as polite:
                        result = await polite.decode(features[1])
                        assert result.ok
                        assert result.words == baselines[1].words

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Raw-socket fuzz: a malformed frame gets ONE typed fatal error frame
# and a clean close; the listener shrugs and keeps serving
# ----------------------------------------------------------------------
class TestWireFuzz:
    @pytest.mark.parametrize(
        "raw",
        [
            # announced sizes far past MAX_FRAME_BYTES — refused before
            # any allocation happens
            b"\x7f\xff\xff\xff\x7f\xff\xff\xff",
            # honest prefix, header bytes that are not JSON
            struct.pack("!II", 4, 0) + b"@#$%",
            # valid JSON, but not an object
            struct.pack("!II", 7, 0) + b"[1,2,3]",
        ],
        ids=["oversized", "not-json", "not-a-dict"],
    )
    def test_malformed_frame_gets_typed_fatal_and_close(
        self, recognizer, workload, raw
    ):
        features, baselines = workload

        async def scenario():
            async with Server(
                recognizer, num_workers=1, max_lanes=2
            ) as server:
                async with WireServer(server) as wire:
                    reader, writer = await asyncio.open_connection(
                        wire.host, wire.port
                    )
                    writer.write(raw)
                    await writer.drain()
                    header, _ = await read_frame(reader)
                    assert header["event"] == "error"
                    assert header["fatal"] is True
                    assert "protocol error" in header["error"]
                    assert await reader.read() == b""  # clean close
                    writer.close()

                    # The listener survives fuzzed peers.
                    async with await ServeClient.connect(
                        wire.host, wire.port
                    ) as client:
                        result = await client.decode(features[0])
                        assert result.ok
                        assert result.words == baselines[0].words

        asyncio.run(scenario())

    def test_truncated_frame_then_close_is_silent(
        self, recognizer, workload
    ):
        """A peer that dies mid-frame is an ordinary disconnect — no
        error frame, no log spew, and the next connection is served."""
        features, baselines = workload

        async def scenario():
            async with Server(
                recognizer, num_workers=1, max_lanes=2
            ) as server:
                async with WireServer(server) as wire:
                    reader, writer = await asyncio.open_connection(
                        wire.host, wire.port
                    )
                    meta, payload = encode_array(
                        np.asarray(features[0], dtype=np.float64)
                    )
                    whole = frame_bytes(
                        {"op": "submit", "id": 0, **meta}, payload
                    )
                    writer.write(whole[: len(whole) // 2])
                    await writer.drain()
                    writer.close()
                    # Half a frame is never parsed into a submit; the
                    # server sends nothing back.
                    assert await reader.read() == b""
                    assert server.metrics().submitted == 0

                    async with await ServeClient.connect(
                        wire.host, wire.port
                    ) as client:
                        result = await client.decode(features[1])
                        assert result.ok
                        assert result.words == baselines[1].words

        asyncio.run(scenario())

    def test_keyed_submit_retry_replays_without_second_decode(
        self, recognizer, workload
    ):
        """Raw-frame view of idempotent dedup: a second submit with the
        same key (and no payload at all) gets the parked result back —
        identical words and bit-identical score, one decode total."""
        features, baselines = workload

        async def scenario():
            async with Server(
                recognizer, num_workers=1, max_lanes=2
            ) as server:
                async with WireServer(server) as wire:
                    reader, writer = await asyncio.open_connection(
                        wire.host, wire.port
                    )
                    writer.write(
                        frame_bytes({"op": "hello", "client": "dedup"})
                    )
                    await writer.drain()
                    hello, _ = await read_frame(reader)
                    assert hello["event"] == "hello"

                    meta, payload = encode_array(
                        np.asarray(features[0], dtype=np.float64)
                    )
                    writer.write(
                        frame_bytes(
                            {"op": "submit", "id": 0, "key": "k1", **meta},
                            payload,
                        )
                    )
                    await writer.drain()
                    accepted, _ = await read_frame(reader)
                    assert accepted["event"] == "accepted"
                    first, _ = await read_frame(reader)
                    assert first["event"] == "result"
                    assert first["status"] == "ok"
                    assert tuple(first["words"]) == baselines[0].words

                    # The retry: same key, new request id, no payload.
                    writer.write(
                        frame_bytes({"op": "submit", "id": 1, "key": "k1"})
                    )
                    await writer.drain()
                    accepted2, _ = await read_frame(reader)
                    assert accepted2["event"] == "accepted"
                    assert accepted2["id"] == 1
                    second, _ = await read_frame(reader)
                    assert second["event"] == "result"
                    assert second["id"] == 1
                    assert second["words"] == first["words"]
                    assert second["score"] == first["score"]

                    metrics = server.metrics()
                    assert metrics.submitted == 1  # decoded exactly once
                    assert metrics.completed == 1
                    writer.close()

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# THE cross-process acceptance test: child process -> socket -> sharded
# server; bit-identical words, typed shedding
# ----------------------------------------------------------------------
CHILD_SCRIPT = """
import asyncio, json, sys
import numpy as np
from repro.serve import AdmissionRejected, ServeClient

async def main(host, port, npz_path):
    data = np.load(npz_path)
    feats = [data[f"utt_{i}"] for i in range(len(data.files))]
    out = {"results": [], "rejection": None}
    client = await ServeClient.connect(host, int(port), client="child")
    tickets = [await client.submit(f) for f in feats]

    # Burst duplicates at the saturated door until one is shed.  Every
    # accepted submit is awaited below -- nothing resolves silently.
    extras = []
    for _ in range(64):
        try:
            extras.append(await client.submit(feats[0]))
        except AdmissionRejected as err:
            out["rejection"] = {
                "reason": err.reason,
                "queue_depth": err.queue_depth,
                "max_queue": err.max_queue,
            }
            break

    for ticket in tickets:
        r = await ticket.result()
        out["results"].append(
            {
                "status": r.status.value,
                "words": list(r.words or ()),
                "score": r.score,
                "worker": r.worker,
            }
        )
    out["extras"] = [
        (await t.result()).status.value for t in extras
    ]
    await client.close()
    print(json.dumps(out))

asyncio.run(main(*sys.argv[1:]))
"""


class TestCrossProcessWire:
    def test_child_process_decodes_bit_identical(
        self, task, recognizer, workload, tmp_path
    ):
        features, baselines = workload
        parity_count = 4
        npz_path = tmp_path / "utts.npz"
        np.savez(
            npz_path,
            **{f"utt_{i}": features[i] for i in range(parity_count)},
        )

        async def scenario():
            async with Server(
                recognizer,
                num_workers=2,
                max_lanes=2,
                worker_backlog=0,
                max_queue=2,
                use_processes=True,  # forked shards, shared model pages
            ) as server:
                async with WireServer(server) as wire:
                    import repro

                    env = dict(os.environ)
                    env["PYTHONPATH"] = os.path.dirname(
                        os.path.dirname(repro.__file__)
                    )
                    child = await asyncio.create_subprocess_exec(
                        sys.executable,
                        "-c",
                        CHILD_SCRIPT,
                        wire.host,
                        str(wire.port),
                        str(npz_path),
                        env=env,
                        stdout=asyncio.subprocess.PIPE,
                        stderr=asyncio.subprocess.PIPE,
                    )
                    stdout, stderr = await asyncio.wait_for(
                        child.communicate(), timeout=120
                    )
                    assert child.returncode == 0, stderr.decode()
                    return json.loads(stdout.decode())

        report = asyncio.run(scenario())

        # Bit-identical across process + socket: words AND float64
        # scores survive the wire exactly.
        assert len(report["results"]) == parity_count
        workers_used = set()
        for got, base in zip(report["results"], baselines):
            assert got["status"] == "ok"
            assert tuple(got["words"]) == base.words
            assert got["score"] == base.score
            workers_used.add(got["worker"])
        assert workers_used == {0, 1}, "both shards should have decoded"

        # The saturated door shed with a typed rejection...
        assert report["rejection"] is not None
        assert report["rejection"]["reason"] in (
            "queue_full",
            "client_quota",
        )
        assert report["rejection"]["max_queue"] == 2
        # ...and every accepted extra resolved to a typed status.
        assert all(
            status in ("ok", "timeout") for status in report["extras"]
        )
