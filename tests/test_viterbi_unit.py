"""Tests for repro.core.viterbi_unit against the exact reference."""

import numpy as np
import pytest

from repro.core.viterbi_unit import (
    BP_ENTRY,
    BP_FORWARD,
    BP_SELF,
    LOG_ZERO,
    ViterbiUnit,
    ViterbiUnitSpec,
)
from repro.decoder.viterbi import viterbi_decode
from repro.hmm.topology import HmmTopology


def _left_right_transitions(n_states: int, self_p: float = 0.6) -> np.ndarray:
    mat = np.full((n_states, n_states), -np.inf)
    for i in range(n_states):
        mat[i, i] = np.log(self_p)
        if i + 1 < n_states:
            mat[i, i + 1] = np.log(1 - self_p)
    return mat


class TestDenseColumn:
    def test_matches_reference_decoder(self, rng):
        unit = ViterbiUnit()
        trans = _left_right_transitions(3)
        obs = rng.normal(-3, 1, size=(6, 3))
        init = np.array([0.0, -np.inf, -np.inf])
        # Run the unit frame by frame.
        delta = (init + obs[0]).astype(np.float32)
        for t in range(1, 6):
            delta, _, _ = unit.step_column(delta, trans, obs[t].astype(np.float32))
        exact = viterbi_decode(trans, obs, init)
        assert float(delta.max()) == pytest.approx(exact.log_prob, abs=1e-3)

    def test_backpointers_recover_path(self, rng):
        unit = ViterbiUnit()
        trans = _left_right_transitions(3)
        obs = rng.normal(-2, 1, size=(7, 3))
        init = np.array([0.0, -np.inf, -np.inf])
        delta = (init + obs[0]).astype(np.float32)
        backptrs = []
        for t in range(1, 7):
            delta, bp, _ = unit.step_column(delta, trans, obs[t].astype(np.float32))
            backptrs.append(bp)
        state = int(delta.argmax())
        path = [state]
        for bp in reversed(backptrs):
            state = int(bp[state])
            path.append(state)
        path.reverse()
        exact = viterbi_decode(trans, obs, init)
        assert tuple(path) == exact.states

    def test_cycles_follow_transition_count(self):
        unit = ViterbiUnit()
        trans = _left_right_transitions(3)  # 5 arcs: 3 self + 2 fwd
        delta = np.array([-1.0, -2.0, -3.0], dtype=np.float32)
        _, _, cycles = unit.step_column(delta, trans, np.zeros(3, dtype=np.float32))
        assert cycles == unit.spec.cycles_for_transitions(5)

    @pytest.mark.parametrize("n_states", [3, 5, 7])
    def test_supported_topologies(self, n_states, rng):
        unit = ViterbiUnit()
        trans = _left_right_transitions(n_states)
        delta = rng.normal(-5, 1, size=n_states).astype(np.float32)
        new_delta, bp, _ = unit.step_column(
            delta, trans, np.zeros(n_states, dtype=np.float32)
        )
        assert new_delta.shape == (n_states,)

    def test_unsupported_state_count_rejected(self):
        unit = ViterbiUnit()
        trans = _left_right_transitions(4)
        with pytest.raises(ValueError):
            unit.step_column(
                np.zeros(4, dtype=np.float32), trans, np.zeros(4, dtype=np.float32)
            )

    def test_shape_validation(self):
        unit = ViterbiUnit()
        with pytest.raises(ValueError):
            unit.step_column(
                np.zeros(3, dtype=np.float32),
                np.zeros((3, 4)),
                np.zeros(3, dtype=np.float32),
            )

    def test_skip_transitions_handled(self, rng):
        topo = HmmTopology(num_states=5, allow_skip=True, skip_prob=0.1)
        full = topo.log_transition_matrix()[:5, :5]
        unit = ViterbiUnit()
        delta = rng.normal(-4, 1, size=5).astype(np.float32)
        obs = rng.normal(-2, 1, size=5).astype(np.float32)
        new_delta, _, _ = unit.step_column(delta, full.astype(np.float32), obs)
        # Exact single step in float64.
        expected = (delta[:, None] + full).max(axis=0) + obs
        assert np.allclose(new_delta, expected, atol=1e-3)


class TestChainUpdate:
    def test_matches_dense_on_single_chain(self, rng):
        """The vectorised chain path equals the dense path for an L-R HMM."""
        unit_dense = ViterbiUnit()
        unit_chain = ViterbiUnit()
        topo = HmmTopology(num_states=3)
        self_lp, fwd_lp = topo.chain_log_probs()
        trans = _left_right_transitions(3, topo.self_loop_prob)
        delta = rng.normal(-5, 1, size=3).astype(np.float32)
        obs = rng.normal(-2, 1, size=3).astype(np.float32)
        dense, _, _ = unit_dense.step_column(delta, trans, obs)
        chain = unit_chain.update_chain(
            delta,
            np.full(3, self_lp, dtype=np.float32),
            np.full(3, fwd_lp, dtype=np.float32),
            obs,
            chain_start=np.array([True, False, False]),
        )
        assert np.allclose(dense, chain.delta, atol=1e-4)

    def test_entry_wins_when_better(self):
        unit = ViterbiUnit()
        delta = np.full(3, LOG_ZERO, dtype=np.float32)
        entry = np.array([-1.0, LOG_ZERO, LOG_ZERO], dtype=np.float32)
        result = unit.update_chain(
            delta,
            np.full(3, -0.5, dtype=np.float32),
            np.full(3, -0.7, dtype=np.float32),
            np.zeros(3, dtype=np.float32),
            entry_scores=entry,
            chain_start=np.array([True, False, False]),
        )
        assert result.backpointer[0] == BP_ENTRY
        assert result.delta[0] == pytest.approx(-1.0)
        assert result.delta[1] == LOG_ZERO

    def test_forward_propagation(self):
        unit = ViterbiUnit()
        delta = np.array([-1.0, LOG_ZERO, LOG_ZERO], dtype=np.float32)
        result = unit.update_chain(
            delta,
            np.full(3, np.log(0.5), dtype=np.float32),
            np.full(3, np.log(0.5), dtype=np.float32),
            np.zeros(3, dtype=np.float32),
            chain_start=np.array([True, False, False]),
        )
        assert result.backpointer[1] == BP_FORWARD
        assert result.delta[1] == pytest.approx(-1.0 + np.log(0.5), abs=1e-5)
        assert result.backpointer[0] == BP_SELF

    def test_chain_boundary_isolation(self):
        """Probability must not leak across chain starts."""
        unit = ViterbiUnit()
        delta = np.array([-1.0, -1.0, -1.0, LOG_ZERO], dtype=np.float32)
        starts = np.array([True, False, False, True])  # two chains: 3 + 1
        result = unit.update_chain(
            delta,
            np.full(4, np.log(0.6), dtype=np.float32),
            np.full(4, np.log(0.4), dtype=np.float32),
            np.zeros(4, dtype=np.float32),
            chain_start=starts,
        )
        # State 3 heads a new chain: no forward arc from state 2.
        assert result.delta[3] == LOG_ZERO

    def test_transition_counting(self):
        unit = ViterbiUnit()
        delta = np.zeros(4, dtype=np.float32)
        starts = np.array([True, False, True, False])
        result = unit.update_chain(
            delta,
            np.zeros(4, dtype=np.float32),
            np.zeros(4, dtype=np.float32),
            np.zeros(4, dtype=np.float32),
            entry_scores=np.zeros(4, dtype=np.float32),
            chain_start=starts,
        )
        # 4 self + 2 forward + 2 entry = 8.
        assert result.transitions == 8
        assert result.cycles == unit.spec.cycles_for_transitions(8)

    def test_shape_validation(self):
        unit = ViterbiUnit()
        with pytest.raises(ValueError):
            unit.update_chain(
                np.zeros(3, dtype=np.float32),
                np.zeros(2, dtype=np.float32),
                np.zeros(3, dtype=np.float32),
                np.zeros(3, dtype=np.float32),
            )

    def test_activity_and_reset(self):
        unit = ViterbiUnit()
        unit.update_chain(
            np.zeros(3, dtype=np.float32),
            np.zeros(3, dtype=np.float32),
            np.zeros(3, dtype=np.float32),
            np.zeros(3, dtype=np.float32),
        )
        act = unit.activity()
        assert act["columns"] == 1
        assert act["transitions"] > 0
        unit.reset_counters()
        assert unit.activity()["transitions"] == 0


class TestSpecValidation:
    def test_rejects_bad_clock(self):
        with pytest.raises(ValueError):
            ViterbiUnitSpec(clock_hz=0)

    def test_seconds(self):
        unit = ViterbiUnit()
        assert unit.seconds(50_000_000) == pytest.approx(1.0)
