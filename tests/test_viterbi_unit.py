"""Tests for repro.core.viterbi_unit against the exact reference."""

import numpy as np
import pytest

from repro.core.viterbi_unit import (
    BP_ENTRY,
    BP_FORWARD,
    BP_SELF,
    LOG_ZERO,
    ViterbiUnit,
    ViterbiUnitSpec,
)
from repro.decoder.viterbi import viterbi_decode
from repro.hmm.topology import HmmTopology


def _left_right_transitions(n_states: int, self_p: float = 0.6) -> np.ndarray:
    mat = np.full((n_states, n_states), -np.inf)
    for i in range(n_states):
        mat[i, i] = np.log(self_p)
        if i + 1 < n_states:
            mat[i, i + 1] = np.log(1 - self_p)
    return mat


class TestDenseColumn:
    def test_matches_reference_decoder(self, rng):
        unit = ViterbiUnit()
        trans = _left_right_transitions(3)
        obs = rng.normal(-3, 1, size=(6, 3))
        init = np.array([0.0, -np.inf, -np.inf])
        # Run the unit frame by frame.
        delta = (init + obs[0]).astype(np.float32)
        for t in range(1, 6):
            delta, _, _ = unit.step_column(delta, trans, obs[t].astype(np.float32))
        exact = viterbi_decode(trans, obs, init)
        assert float(delta.max()) == pytest.approx(exact.log_prob, abs=1e-3)

    def test_backpointers_recover_path(self, rng):
        unit = ViterbiUnit()
        trans = _left_right_transitions(3)
        obs = rng.normal(-2, 1, size=(7, 3))
        init = np.array([0.0, -np.inf, -np.inf])
        delta = (init + obs[0]).astype(np.float32)
        backptrs = []
        for t in range(1, 7):
            delta, bp, _ = unit.step_column(delta, trans, obs[t].astype(np.float32))
            backptrs.append(bp)
        state = int(delta.argmax())
        path = [state]
        for bp in reversed(backptrs):
            state = int(bp[state])
            path.append(state)
        path.reverse()
        exact = viterbi_decode(trans, obs, init)
        assert tuple(path) == exact.states

    def test_cycles_follow_transition_count(self):
        unit = ViterbiUnit()
        trans = _left_right_transitions(3)  # 5 arcs: 3 self + 2 fwd
        delta = np.array([-1.0, -2.0, -3.0], dtype=np.float32)
        _, _, cycles = unit.step_column(delta, trans, np.zeros(3, dtype=np.float32))
        assert cycles == unit.spec.cycles_for_transitions(5)

    @pytest.mark.parametrize("n_states", [3, 5, 7])
    def test_supported_topologies(self, n_states, rng):
        unit = ViterbiUnit()
        trans = _left_right_transitions(n_states)
        delta = rng.normal(-5, 1, size=n_states).astype(np.float32)
        new_delta, bp, _ = unit.step_column(
            delta, trans, np.zeros(n_states, dtype=np.float32)
        )
        assert new_delta.shape == (n_states,)

    def test_unsupported_state_count_rejected(self):
        unit = ViterbiUnit()
        trans = _left_right_transitions(4)
        with pytest.raises(ValueError):
            unit.step_column(
                np.zeros(4, dtype=np.float32), trans, np.zeros(4, dtype=np.float32)
            )

    def test_shape_validation(self):
        unit = ViterbiUnit()
        with pytest.raises(ValueError):
            unit.step_column(
                np.zeros(3, dtype=np.float32),
                np.zeros((3, 4)),
                np.zeros(3, dtype=np.float32),
            )

    def test_skip_transitions_handled(self, rng):
        topo = HmmTopology(num_states=5, allow_skip=True, skip_prob=0.1)
        full = topo.log_transition_matrix()[:5, :5]
        unit = ViterbiUnit()
        delta = rng.normal(-4, 1, size=5).astype(np.float32)
        obs = rng.normal(-2, 1, size=5).astype(np.float32)
        new_delta, _, _ = unit.step_column(delta, full.astype(np.float32), obs)
        # Exact single step in float64.
        expected = (delta[:, None] + full).max(axis=0) + obs
        assert np.allclose(new_delta, expected, atol=1e-3)


class TestChainUpdate:
    def test_matches_dense_on_single_chain(self, rng):
        """The vectorised chain path equals the dense path for an L-R HMM."""
        unit_dense = ViterbiUnit()
        unit_chain = ViterbiUnit()
        topo = HmmTopology(num_states=3)
        self_lp, fwd_lp = topo.chain_log_probs()
        trans = _left_right_transitions(3, topo.self_loop_prob)
        delta = rng.normal(-5, 1, size=3).astype(np.float32)
        obs = rng.normal(-2, 1, size=3).astype(np.float32)
        dense, _, _ = unit_dense.step_column(delta, trans, obs)
        chain = unit_chain.update_chain(
            delta,
            np.full(3, self_lp, dtype=np.float32),
            np.full(3, fwd_lp, dtype=np.float32),
            obs,
            chain_start=np.array([True, False, False]),
        )
        assert np.allclose(dense, chain.delta, atol=1e-4)

    def test_entry_wins_when_better(self):
        unit = ViterbiUnit()
        delta = np.full(3, LOG_ZERO, dtype=np.float32)
        entry = np.array([-1.0, LOG_ZERO, LOG_ZERO], dtype=np.float32)
        result = unit.update_chain(
            delta,
            np.full(3, -0.5, dtype=np.float32),
            np.full(3, -0.7, dtype=np.float32),
            np.zeros(3, dtype=np.float32),
            entry_scores=entry,
            chain_start=np.array([True, False, False]),
        )
        assert result.backpointer[0] == BP_ENTRY
        assert result.delta[0] == pytest.approx(-1.0)
        assert result.delta[1] == LOG_ZERO

    def test_forward_propagation(self):
        unit = ViterbiUnit()
        delta = np.array([-1.0, LOG_ZERO, LOG_ZERO], dtype=np.float32)
        result = unit.update_chain(
            delta,
            np.full(3, np.log(0.5), dtype=np.float32),
            np.full(3, np.log(0.5), dtype=np.float32),
            np.zeros(3, dtype=np.float32),
            chain_start=np.array([True, False, False]),
        )
        assert result.backpointer[1] == BP_FORWARD
        assert result.delta[1] == pytest.approx(-1.0 + np.log(0.5), abs=1e-5)
        assert result.backpointer[0] == BP_SELF

    def test_chain_boundary_isolation(self):
        """Probability must not leak across chain starts."""
        unit = ViterbiUnit()
        delta = np.array([-1.0, -1.0, -1.0, LOG_ZERO], dtype=np.float32)
        starts = np.array([True, False, False, True])  # two chains: 3 + 1
        result = unit.update_chain(
            delta,
            np.full(4, np.log(0.6), dtype=np.float32),
            np.full(4, np.log(0.4), dtype=np.float32),
            np.zeros(4, dtype=np.float32),
            chain_start=starts,
        )
        # State 3 heads a new chain: no forward arc from state 2.
        assert result.delta[3] == LOG_ZERO

    def test_transition_counting(self):
        unit = ViterbiUnit()
        delta = np.zeros(4, dtype=np.float32)
        starts = np.array([True, False, True, False])
        result = unit.update_chain(
            delta,
            np.zeros(4, dtype=np.float32),
            np.zeros(4, dtype=np.float32),
            np.zeros(4, dtype=np.float32),
            entry_scores=np.zeros(4, dtype=np.float32),
            chain_start=starts,
        )
        # 4 self + 2 forward + 2 entry = 8.
        assert result.transitions == 8
        assert result.cycles == unit.spec.cycles_for_transitions(8)

    def test_shape_validation(self):
        unit = ViterbiUnit()
        with pytest.raises(ValueError):
            unit.update_chain(
                np.zeros(3, dtype=np.float32),
                np.zeros(2, dtype=np.float32),
                np.zeros(3, dtype=np.float32),
                np.zeros(3, dtype=np.float32),
            )

    def test_activity_and_reset(self):
        unit = ViterbiUnit()
        unit.update_chain(
            np.zeros(3, dtype=np.float32),
            np.zeros(3, dtype=np.float32),
            np.zeros(3, dtype=np.float32),
            np.zeros(3, dtype=np.float32),
        )
        act = unit.activity()
        assert act["columns"] == 1
        assert act["transitions"] > 0
        unit.reset_counters()
        assert unit.activity()["transitions"] == 0


def _chain_update_oracle(prev, self_lp, fwd_lp, obs, entry, starts):
    """Freshly-allocating float32 chain update (the pre-scratch math)."""
    stay = prev + self_lp
    from_prev = np.empty_like(prev)
    from_prev[0] = LOG_ZERO
    from_prev[1:] = prev[:-1] + fwd_lp[:-1]
    from_prev[starts] = LOG_ZERO
    enter = np.where(starts, entry, np.float32(LOG_ZERO))
    best = stay
    backptr = np.full(prev.shape, BP_SELF, dtype=np.int8)
    better = from_prev > best
    best = np.where(better, from_prev, best)
    backptr[better] = BP_FORWARD
    better = enter > best
    best = np.where(better, enter, best)
    backptr[better] = BP_ENTRY
    new_delta = (best + obs).astype(np.float32)
    new_delta[best <= np.float32(LOG_ZERO)] = LOG_ZERO
    return new_delta, backptr


class TestChainScratchReuse:
    """update_chain reuses per-step work arrays; outputs must not change."""

    def _random_inputs(self, rng, k=12):
        prev = rng.normal(-5, 2, size=k).astype(np.float32)
        prev[rng.random(k) < 0.3] = LOG_ZERO
        self_lp = rng.normal(-0.5, 0.1, size=k).astype(np.float32)
        fwd_lp = rng.normal(-0.9, 0.1, size=k).astype(np.float32)
        obs = rng.normal(-2, 1, size=k).astype(np.float32)
        entry = np.full(k, LOG_ZERO, dtype=np.float32)
        starts = np.zeros(k, dtype=bool)
        starts[::4] = True
        entry[starts] = rng.normal(
            -3, 1, size=int(np.count_nonzero(starts))
        ).astype(np.float32)
        return prev, self_lp, fwd_lp, obs, entry, starts

    def test_repeated_calls_bit_identical_to_oracle(self, rng):
        unit = ViterbiUnit()
        for _ in range(5):
            inputs = self._random_inputs(rng)
            result = unit.update_chain(
                inputs[0], inputs[1], inputs[2], inputs[3],
                entry_scores=inputs[4], chain_start=inputs[5],
            )
            delta, backptr = _chain_update_oracle(*inputs)
            np.testing.assert_array_equal(result.delta, delta)
            np.testing.assert_array_equal(result.backpointer, backptr)

    def test_buffers_are_reused_across_frames(self, rng):
        unit = ViterbiUnit()
        first = unit.update_chain(*self._random_inputs(rng)[:4])
        second = unit.update_chain(*self._random_inputs(rng)[:4])
        assert first.delta is second.delta  # unit-owned scratch
        assert first.backpointer is second.backpointer

    def test_size_change_reallocates(self, rng):
        unit = ViterbiUnit()
        small = unit.update_chain(*self._random_inputs(rng, k=8)[:4])
        assert small.delta.shape == (8,)
        large = unit.update_chain(*self._random_inputs(rng, k=16)[:4])
        assert large.delta.shape == (16,)

    def test_prev_may_alias_the_delta_scratch(self, rng):
        """Feeding the returned delta straight back in must be safe."""
        unit, fresh = ViterbiUnit(), ViterbiUnit()
        inputs = self._random_inputs(rng)
        result = unit.update_chain(
            inputs[0], inputs[1], inputs[2], inputs[3],
            entry_scores=inputs[4], chain_start=inputs[5],
        )
        expected_prev = result.delta.copy()
        chained = unit.update_chain(
            result.delta, inputs[1], inputs[2], inputs[3],
            entry_scores=inputs[4], chain_start=inputs[5],
        )
        oracle = fresh.update_chain(
            expected_prev, inputs[1], inputs[2], inputs[3],
            entry_scores=inputs[4], chain_start=inputs[5],
        )
        np.testing.assert_array_equal(chained.delta, oracle.delta)
        np.testing.assert_array_equal(chained.backpointer, oracle.backpointer)


class TestSpecValidation:
    def test_rejects_bad_clock(self):
        with pytest.raises(ValueError):
            ViterbiUnitSpec(clock_hz=0)

    def test_seconds(self):
        unit = ViterbiUnit()
        assert unit.seconds(50_000_000) == pytest.approx(1.0)
