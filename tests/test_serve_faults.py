"""Deterministic chaos for the serving stack (`repro.serve.faults`).

Covers, per the PR's acceptance criteria:

* :class:`FaultPlan` mechanics — counter-based sites, seeded schedule
  reproducibility, loud validation;
* client resilience — reconnect with capped/jittered backoff,
  idempotent submit replay (at most once), typed
  :class:`ConnectionLost` / :class:`RetriesExhausted` for everything
  non-retryable (streams never hang);
* graceful brownout — hysteresis engage/release, live blas precision
  downshift with full restoration, ``reason="brownout"`` admission
  tightening — and steal-aware shard health scoring;
* THE chaos matrix: a seeded plan combining two worker kills, a
  socket drop (client auto-reconnects) and a slow shard, under 24
  mixed submit/stream jobs over two forked shards through a real
  socket — every job resolves to a typed outcome, zero silent drops,
  OK results bit-identical to fault-free decode, and the whole run
  repeats identically for the same plan.

No pytest-asyncio dependency: async tests run under ``asyncio.run``.
"""

import asyncio

import numpy as np
import pytest

from repro.decoder import Recognizer
from repro.runtime.serving import JobStolen
from repro.serve import (
    AdmissionRejected,
    BrownoutPolicy,
    ConnectionLost,
    Fault,
    FaultPlan,
    RetriesExhausted,
    RetryPolicy,
    ServeClient,
    ServeStatus,
    Server,
    WireServer,
)
from repro.serve.client import WireProtocolError


def make_recognizer(task, mode="reference", **kwargs):
    return Recognizer.create(
        task.dictionary, task.pool, task.lm, task.tying, mode=mode, **kwargs
    )


@pytest.fixture(scope="module")
def recognizer(task):
    return make_recognizer(task)


@pytest.fixture(scope="module")
def workload(task, recognizer):
    """Ragged utterances (full + truncated variants) with their
    fault-free sequential baselines — the bit-identity reference."""
    features = []
    for utt in task.corpus.test:
        features.append(utt.features)
        features.append(utt.features[: max(40, utt.features.shape[0] // 2)])
    baselines = [recognizer.decode(f) for f in features]
    return features, baselines


FAST_RETRY = RetryPolicy(
    max_reconnects=4, backoff_base_s=0.01, backoff_cap_s=0.05, jitter=0.5, seed=2
)


# ----------------------------------------------------------------------
# FaultPlan: counters, seeding, validation
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_fire_counts_events_and_records_injections(self):
        plan = FaultPlan(
            [
                Fault(site="wire_tx", at=2, kind="delay", delay_s=0.5),
                Fault(site="wire_tx", at=2, kind="disconnect"),
                Fault(site="dispatch", at=1, kind="worker_kill", worker=0),
            ]
        )
        assert plan.fire("wire_tx") == []  # event 1: nothing scheduled
        due = plan.fire("wire_tx")  # event 2: both faults fire together
        assert [f.kind for f in due] == ["delay", "disconnect"]
        assert plan.fire("wire_tx") == []  # event 3: one-shot, not repeated
        assert plan.count("wire_tx") == 3
        assert plan.faults_injected == 2
        assert [f.kind for f in plan.fire("dispatch")] == ["worker_kill"]
        assert plan.faults_injected == 3
        assert plan.count("wire_rx") == 0

    def test_unknown_site_raises_instead_of_disabling_faults(self):
        plan = FaultPlan([])
        with pytest.raises(ValueError, match="unknown fault site"):
            plan.fire("dispatchh")

    def test_fault_validation_is_loud(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            Fault(site="nope", at=1, kind="disconnect")
        with pytest.raises(ValueError, match="not valid at site"):
            Fault(site="wire_rx", at=1, kind="worker_kill")
        with pytest.raises(ValueError, match="1-based"):
            Fault(site="wire_rx", at=0, kind="disconnect")
        with pytest.raises(ValueError, match="target worker"):
            Fault(site="dispatch", at=1, kind="worker_kill")

    def test_seeded_schedule_is_reproducible(self):
        kwargs = dict(
            num_workers=2,
            jobs=24,
            worker_kills=2,
            slow_shards=1,
            wire_disconnects=2,
            client_disconnects=1,
        )
        a = FaultPlan.seeded(42, **kwargs)
        b = FaultPlan.seeded(42, **kwargs)
        assert a.faults == b.faults
        assert len(a) == 6
        assert FaultPlan.seeded(43, **kwargs).faults != a.faults
        # Kinds/sites follow the knobs exactly.
        kinds = sorted(f.kind for f in a.faults)
        assert kinds == sorted(
            ["worker_kill", "worker_kill", "slow_shard", "disconnect",
             "disconnect", "disconnect"]
        )
        assert all(
            f.worker is not None
            for f in a.faults
            if f.kind in ("worker_kill", "slow_shard")
        )


# ----------------------------------------------------------------------
# RetryPolicy: capped exponential backoff with seeded jitter
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_is_capped_exponential_and_seeded(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_cap_s=0.3, jitter=0.5, seed=3
        )
        seq1 = [
            policy.backoff_s(k, np.random.default_rng(3)) for k in range(5)
        ]
        seq2 = [
            policy.backoff_s(k, np.random.default_rng(3)) for k in range(5)
        ]
        assert seq1 == seq2  # same seed, same jitter, run after run
        assert all(s <= 0.3 * 1.5 for s in seq1)  # cap * (1 + jitter)
        plain = RetryPolicy(backoff_base_s=0.1, backoff_cap_s=0.3, jitter=0.0)
        assert [plain.backoff_s(k, None) for k in range(4)] == [
            0.1,
            0.2,
            0.3,
            0.3,
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_reconnects=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-0.1)


# ----------------------------------------------------------------------
# Brownout: hysteresis, precision downshift + restoration, admission
# ----------------------------------------------------------------------
class TestBrownout:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BrownoutPolicy(engage_pressure=0.5, release_pressure=0.5)
        with pytest.raises(ValueError):
            BrownoutPolicy(engage_windows=0)
        with pytest.raises(ValueError):
            BrownoutPolicy(admission_factor=0.0)
        with pytest.raises(ValueError):
            BrownoutPolicy(admission_factor=1.5)

    def test_hysteresis_needs_consecutive_windows(self, recognizer):
        policy = BrownoutPolicy(
            engage_windows=2, release_windows=2, downshift_precision=False
        )
        server = Server(recognizer, brownout=policy, max_queue=8)
        server._timeouts += 1  # window 1 shed something -> pressure 1.0
        server._brownout_tick()
        assert not server._brownout_active  # one hot window is not enough
        server._timeouts += 1
        server._brownout_tick()
        assert server._brownout_active
        assert server._brownout_transitions == 1
        server._brownout_tick()  # cool window 1 (no misses, empty queue)
        assert server._brownout_active  # one cool window is not enough
        server._brownout_tick()
        assert not server._brownout_active
        assert server._brownout_transitions == 2

    def test_interrupted_hot_streak_resets(self, recognizer):
        policy = BrownoutPolicy(
            engage_windows=2, release_windows=2, downshift_precision=False
        )
        server = Server(recognizer, brownout=policy, max_queue=8)
        server._timeouts += 1
        server._brownout_tick()  # hot
        server._brownout_tick()  # cool: streak broken
        server._timeouts += 1
        server._brownout_tick()  # hot again, but streak restarted
        assert not server._brownout_active

    def test_pressure_sees_dead_shards_and_sheds(self, recognizer):
        server = Server(
            recognizer,
            num_workers=2,
            brownout=BrownoutPolicy(downshift_precision=False),
            max_queue=8,
        )
        server._worker_alive = [True, False]
        assert server._brownout_pressure(0) == 0.5  # half the fleet is gone
        assert server._brownout_pressure(3) == 1.0  # any shed forces 1.0

    def test_precision_downshift_and_full_restoration(self, task, workload):
        """Engage: every live blas shard swaps to float32 tables
        mid-serve.  Release: float64 restored, and a decode afterwards
        is bit-identical to one from before the brownout."""
        features, _ = workload
        rec = make_recognizer(task, mode="blas")
        policy = BrownoutPolicy(engage_windows=1, release_windows=1)

        async def poll_precision(server, want):
            for _ in range(500):
                workers = server.metrics().workers
                if all(w.precision == want for w in workers):
                    return
                await asyncio.sleep(0.01)
            raise AssertionError(
                f"workers never reached precision {want!r}: "
                f"{[w.precision for w in server.metrics().workers]}"
            )

        async def scenario():
            server = Server(rec, num_workers=2, max_lanes=2, brownout=policy)
            # Manual ticks only: the sweeper's own brownout ticks would
            # race the assertions below.
            server.AUTOTUNE_INTERVAL_S = 3600.0
            await server.start()
            try:
                before = await server.submit(features[0]).result()
                assert before.status is ServeStatus.OK
                # An idle worker reports precision only after its
                # first stats emission; the server-level view is live.
                assert server.metrics().scoring_precision == "float64"

                server._timeouts += 1  # simulate a shed window
                server._brownout_tick()
                assert server._brownout_active
                m = server.metrics()
                assert m.brownout_active and m.brownout_transitions == 1
                assert m.scoring_precision == "float32"
                await poll_precision(server, "float32")
                degraded = await server.submit(features[0]).result()
                assert degraded.status is ServeStatus.OK  # degraded, not shed

                server._brownout_tick()  # cool window -> release
                assert not server._brownout_active
                m = server.metrics()
                assert not m.brownout_active and m.brownout_transitions == 2
                assert m.scoring_precision == "float64"
                await poll_precision(server, "float64")
                after = await server.submit(features[0]).result()
                assert after.status is ServeStatus.OK
                # Full restoration: bit-identical to pre-brownout.
                assert after.words == before.words
                assert after.result.score == before.result.score
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_admission_tightens_with_typed_brownout_rejections(
        self, recognizer, workload
    ):
        features, _ = workload
        policy = BrownoutPolicy(
            engage_windows=1,
            release_windows=1,
            downshift_precision=False,
            admission_factor=0.5,
        )

        async def scenario():
            server = Server(
                recognizer,
                num_workers=1,
                max_lanes=1,
                worker_backlog=0,
                max_queue=8,
                brownout=policy,
            )
            server.AUTOTUNE_INTERVAL_S = 3600.0
            await server.start()
            try:
                assert server._effective_max_queue() == 8
                server._timeouts += 1
                server._brownout_tick()
                assert server._brownout_active
                assert server._effective_max_queue() == 4
                # 1 dispatches (capacity=max_lanes), 4 fill the
                # tightened queue; the next submit sheds typed.
                sessions = [server.submit(features[0]) for _ in range(5)]
                with pytest.raises(AdmissionRejected) as err:
                    server.submit(features[0])
                assert err.value.reason == "brownout"
                assert err.value.max_queue == 4
                # Everything admitted still resolves: tightening the
                # door never drops accepted work.
                for session in sessions:
                    assert (await session.result()).status is ServeStatus.OK
            finally:
                await server.stop()

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Steal-aware shard health
# ----------------------------------------------------------------------
class TestShardHealth:
    def test_health_recovers_one_quarter_per_clean_window(self, recognizer):
        server = Server(recognizer, num_workers=2)
        server._worker_health = [0.25, 1.0]
        server._worker_stolen = [0, 0]
        server._worker_stolen_last = [0, 0]
        server._health_tick()
        assert server._worker_health == [0.5, 1.0]
        server._worker_stolen[0] += 1  # lost work again this window
        server._health_tick()
        assert server._worker_health == [0.5, 1.0]  # no recovery
        server._health_tick()
        server._health_tick()
        assert server._worker_health == [1.0, 1.0]  # capped

    def test_capacity_scales_backlog_share_only(self, recognizer):
        server = Server(recognizer, num_workers=2, max_lanes=2, worker_backlog=4)
        server._worker_health = [1.0, 0.25]
        assert server._capacity_for(0) == 6
        assert server._capacity_for(1) == 3  # lanes always dispatchable
        server._worker_health[1] = 0.5
        assert server._capacity_for(1) == 4

    def test_losing_a_steal_halves_health_with_floor(
        self, recognizer, workload
    ):
        features, baselines = workload

        async def scenario():
            async with Server(
                recognizer,
                num_workers=2,
                max_lanes=1,
                worker_backlog=2,
                max_queue=16,
            ) as server:
                first = server.submit(features[0])
                assert first.worker == 0
                server._on_event(0, JobStolen(first.utt_id))
                assert server._worker_health[0] == 0.5
                assert server._worker_stolen[0] == 1
                assert server.metrics().workers[0].health == 0.5
                server._worker_health[0] = 0.4
                second = server.submit(features[1])
                server._on_event(second.worker, JobStolen(second.utt_id))
                assert min(server._worker_health) == 0.25  # the floor
                for session, base in ((first, baselines[0]), (second, baselines[1])):
                    result = await session.result()
                    assert result.status is ServeStatus.OK
                    assert result.words == base.words
                    assert result.result.score == base.score
                assert server.metrics().steals == 2

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Injected engine faults through the server (threads, in-process)
# ----------------------------------------------------------------------
class TestDispatchFaults:
    def test_slow_shard_stalls_but_stays_correct(self, recognizer, workload):
        features, baselines = workload
        plan = FaultPlan(
            [
                Fault(
                    site="dispatch",
                    at=1,
                    kind="slow_shard",
                    worker=0,
                    stall_s=0.001,
                    stall_steps=10,
                )
            ]
        )

        async def scenario():
            async with Server(
                recognizer, num_workers=1, max_lanes=2, fault_plan=plan
            ) as server:
                for i in range(3):  # enough steps to cross STATS_EVERY
                    result = await server.submit(features[i]).result()
                    assert result.status is ServeStatus.OK
                    assert result.words == baselines[i].words
                    assert result.result.score == baselines[i].score
                assert plan.faults_injected == 1
                for _ in range(300):
                    worker = server.metrics().workers[0]
                    if worker.stalled_steps > 0:
                        break
                    await asyncio.sleep(0.01)
                assert server.metrics().workers[0].stalled_steps > 0
                assert server.metrics().faults_injected == 1
                # The flight recorder dumped the injection with the
                # dispatch history that led up to it.
                [dump] = [
                    i
                    for i in server.incidents()
                    if i.reason == "fault_injected"
                ]
                assert dump.shard == 0
                assert dump.detail == "slow_shard"
                kinds = {e["kind"] for e in dump.events}
                assert {"submit", "dispatch", "fault"} <= kinds
                assert "incident: fault_injected shard=0" in dump.render()

        asyncio.run(scenario())

    def test_thread_worker_crash_redispatches(self, recognizer, workload):
        """A CrashWorker fault kills a thread worker's loop (raise ->
        ServeStopped with a traceback); its jobs re-run on the
        survivor bit-identically."""
        features, baselines = workload
        plan = FaultPlan(
            [Fault(site="dispatch", at=1, kind="worker_kill", worker=0)]
        )

        async def scenario():
            async with Server(
                recognizer,
                num_workers=2,
                max_lanes=1,
                worker_backlog=2,
                max_queue=16,
                fault_plan=plan,
            ) as server:
                sessions = [server.submit(features[0]) for _ in range(4)]
                results = await asyncio.gather(*[s.result() for s in sessions])
                for result in results:
                    assert result.status is ServeStatus.OK, result
                    assert result.words == baselines[0].words
                    assert result.result.score == baselines[0].score
                assert not server._worker_alive[0]
                assert server.metrics().retries >= 1
                assert server.metrics().errors == 0
                # The death produced a timeline: the kill and the
                # doomed job's dispatch are in the dump.
                [death] = [
                    i for i in server.incidents() if i.reason == "worker_death"
                ]
                assert death.shard == 0
                kinds = {e["kind"] for e in death.events}
                assert {"dispatch", "fault", "worker_death"} <= kinds

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Flight-recorder incidents outside injected faults
# ----------------------------------------------------------------------
class TestIncidentDumps:
    def test_deadline_miss_dumps_a_timeline(self, recognizer, workload):
        """A timeout is an incident, not a lone status code: the dump
        names the utterance and carries the events that led to it."""
        features, _ = workload

        async def scenario():
            async with Server(
                recognizer, num_workers=1, max_lanes=2
            ) as server:
                fine = server.submit(features[0])
                doomed = server.submit(features[1], deadline_s=0.0)
                assert (await fine.result()).status is ServeStatus.OK
                assert (await doomed.result()).status is ServeStatus.TIMEOUT
                [dump] = [
                    i for i in server.incidents() if i.reason == "timeout"
                ]
                assert f"utt {doomed.utt_id}" in dump.detail
                kinds = [e["kind"] for e in dump.events]
                assert "submit" in kinds
                # The healthy neighbour produced no dump.
                assert len(server.incidents()) == 1
                rendered = dump.render()
                assert rendered.startswith("incident: timeout")
                assert "[server] submit" in rendered

        asyncio.run(scenario())

    def test_incident_log_is_bounded_under_fault_load(
        self, recognizer, workload
    ):
        """Sustained timeouts cannot grow the black box without bound."""
        features, _ = workload

        async def scenario():
            async with Server(
                recognizer, num_workers=1, max_lanes=2
            ) as server:
                cap = server.flight._incidents.maxlen
                for _ in range(cap + 10):
                    server.flight.incident("timeout", detail="synthetic")
                assert len(server.incidents()) == cap

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Client resilience over a real socket
# ----------------------------------------------------------------------
class TestClientResilience:
    def test_reconnect_replays_lost_submit(self, recognizer, workload):
        """The server drops the connection after reading (and
        discarding) the submit: the client reconnects, replays the
        keyed submit, and the result is bit-identical — decoded once."""
        features, baselines = workload
        plan = FaultPlan([Fault(site="wire_rx", at=2, kind="disconnect")])

        async def scenario():
            async with Server(recognizer, num_workers=1, max_lanes=2) as server:
                async with WireServer(server, fault_plan=plan) as wire:
                    client = await ServeClient.connect(
                        wire.host, wire.port, retry=FAST_RETRY
                    )
                    result = await (await client.submit(features[0])).result()
                    assert result.ok
                    assert result.words == baselines[0].words
                    assert result.score == baselines[0].score
                    assert client.reconnects == 1 and client.retries == 1
                    assert plan.faults_injected == 1
                    metrics = server.metrics()
                    assert metrics.reconnects == 1
                    assert metrics.submitted == 1 and metrics.completed == 1
                    await client.close()

        asyncio.run(scenario())

    @pytest.mark.parametrize("kind", ["disconnect", "truncate"])
    def test_replay_after_accept_reattaches_without_second_decode(
        self, recognizer, workload, kind
    ):
        """The connection dies AFTER the server accepted the submit
        (the accepted frame is cut mid-send): the replayed key
        re-attaches to the live session or its parked result — the
        server decodes exactly once."""
        features, baselines = workload
        plan = FaultPlan([Fault(site="wire_tx", at=2, kind=kind)])

        async def scenario():
            async with Server(recognizer, num_workers=1, max_lanes=2) as server:
                async with WireServer(server, fault_plan=plan) as wire:
                    client = await ServeClient.connect(
                        wire.host, wire.port, retry=FAST_RETRY
                    )
                    result = await (await client.submit(features[0])).result()
                    assert result.ok
                    assert result.words == baselines[0].words
                    assert result.score == baselines[0].score
                    metrics = server.metrics()
                    assert metrics.submitted == 1  # at-most-once decode
                    assert metrics.completed == 1
                    assert client.retries == 1
                    await client.close()

        asyncio.run(scenario())

    def test_second_loss_fails_typed_not_replayed_twice(
        self, recognizer, workload
    ):
        """A submit that burns its one replay fails with
        RetriesExhausted (it may have run server-side); the client
        itself survives and keeps serving new work."""
        features, baselines = workload
        plan = FaultPlan(
            [
                Fault(site="wire_rx", at=2, kind="disconnect"),
                Fault(site="wire_rx", at=4, kind="disconnect"),
            ]
        )

        async def scenario():
            async with Server(recognizer, num_workers=1, max_lanes=2) as server:
                async with WireServer(server, fault_plan=plan) as wire:
                    client = await ServeClient.connect(
                        wire.host, wire.port, retry=FAST_RETRY
                    )
                    with pytest.raises(RetriesExhausted):
                        await (await client.submit(features[0])).result()
                    assert client.reconnects == 2
                    # The connection is alive; only that submit died.
                    fresh = await client.decode(features[1])
                    assert fresh.ok
                    assert fresh.words == baselines[1].words
                    await client.close()

        asyncio.run(scenario())

    def test_reconnect_gives_up_typed_when_server_is_gone(
        self, recognizer, workload
    ):
        features, _ = workload

        async def scenario():
            async with Server(recognizer, num_workers=1, max_lanes=2) as server:
                wire = await WireServer(server).start()
                client = await ServeClient.connect(
                    wire.host,
                    wire.port,
                    retry=RetryPolicy(
                        max_reconnects=2,
                        backoff_base_s=0.01,
                        backoff_cap_s=0.02,
                        seed=4,
                    ),
                )
                await wire.stop()  # listener AND live connections die
                for _ in range(500):
                    if client._conn_exc is not None:
                        break
                    await asyncio.sleep(0.01)
                assert isinstance(client._conn_exc, RetriesExhausted)
                with pytest.raises(RetriesExhausted):
                    await client.submit(features[0])
                await client.close()

        asyncio.run(scenario())

    def test_stream_fails_typed_after_reconnect(self, recognizer, workload):
        """Streams are not idempotent: after a mid-stream connection
        loss the reconnected client raises ConnectionLost from every
        stream op instead of hanging, while fresh submits work."""
        features, baselines = workload
        plan = FaultPlan([Fault(site="client_tx", at=3, kind="disconnect")])

        async def scenario():
            async with Server(recognizer, num_workers=1, max_lanes=2) as server:
                async with WireServer(server) as wire:
                    client = await ServeClient.connect(
                        wire.host, wire.port, retry=FAST_RETRY, fault_plan=plan
                    )
                    stream = await client.open_stream()
                    await stream.send_frames(features[0][:30])  # tx 3: cut
                    for _ in range(500):  # streams die first, then redial
                        if client.reconnects == 1:
                            break
                        await asyncio.sleep(0.01)
                    assert client.reconnects == 1
                    assert stream.req_id in client._dead_streams
                    with pytest.raises(ConnectionLost):
                        await stream.send_frames(features[0][30:60])
                    with pytest.raises(ConnectionLost):
                        await stream.finish()
                    fresh = await client.decode(features[1])
                    assert fresh.ok and fresh.words == baselines[1].words
                    await client.close()

        asyncio.run(scenario())

    def test_fail_all_sweeps_open_streams_without_retry(
        self, recognizer, workload
    ):
        """No retry policy: a connection loss fails open streams typed
        (the _fail_all sweep) — result() raises instead of hanging on
        a session the server already discarded."""
        features, _ = workload
        plan = FaultPlan([Fault(site="wire_rx", at=3, kind="disconnect")])

        async def scenario():
            async with Server(recognizer, num_workers=1, max_lanes=2) as server:
                async with WireServer(server, fault_plan=plan) as wire:
                    client = await ServeClient.connect(wire.host, wire.port)
                    stream = await client.open_stream()
                    await stream.send_frames(features[0][:30])  # rx 3: cut
                    for _ in range(500):
                        if client._conn_exc is not None:
                            break
                        await asyncio.sleep(0.01)
                    assert isinstance(client._conn_exc, ConnectionLost)
                    with pytest.raises(ConnectionLost):
                        await stream.result()
                    with pytest.raises(ConnectionLost):
                        await client.submit(features[0])
                    await client.close()

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# THE chaos matrix: kills + socket drop + slow shard, mixed traffic,
# two forked shards, one socket — typed outcomes, bit-identical OKs,
# deterministic replay
# ----------------------------------------------------------------------
def _chaos_plan() -> FaultPlan:
    """Two worker kills, one socket drop, one slow shard.

    ``at`` positions are laid out against the matrix's deterministic
    event sequence (sequential phase A pins the dispatch counter):

    * dispatch 1: worker 1 starts stalling (slow shard);
    * dispatch 3: worker 0 is SIGKILLed holding job 3 -> the liveness
      sweep redispatches it (dispatch 4) to the survivor;
    * wire_rx 7: the 6th submit is read and dropped, the socket cut ->
      the client reconnects and replays the keyed submit;
    * dispatch 26: after the 24 main jobs (6+8+6+4 dispatches plus the
      one redispatch), the first sentinel submit rides dispatch 26 and
      kills the last shard -> typed ERROR, never silence.
    """
    return FaultPlan(
        [
            Fault(
                site="dispatch",
                at=1,
                kind="slow_shard",
                worker=1,
                stall_s=0.003,
                stall_steps=30,
            ),
            Fault(site="dispatch", at=3, kind="worker_kill", worker=0),
            Fault(site="wire_rx", at=7, kind="disconnect"),
            Fault(site="dispatch", at=26, kind="worker_kill", worker=1),
        ],
        seed=1234,
    )


class TestChaosMatrix:
    JOBS = 24

    async def _run(self, recognizer, features):
        plan = _chaos_plan()
        n = len(features)
        outcomes = []
        record = {"outcomes": outcomes}

        async def consume(result):
            outcomes.append((result.status.value, result.words, result.score))

        async with Server(
            recognizer,
            num_workers=2,
            max_lanes=2,
            worker_backlog=2,
            max_queue=32,
            use_processes=True,
            fault_plan=plan,
        ) as server:
            async with WireServer(server) as wire:
                client = await ServeClient.connect(
                    wire.host,
                    wire.port,
                    client="chaos",
                    retry=RetryPolicy(
                        max_reconnects=4,
                        backoff_base_s=0.01,
                        backoff_cap_s=0.05,
                        jitter=0.5,
                        seed=11,
                    ),
                    fault_plan=plan,
                )
                # Phase A: 6 sequential submits.  Job 3 rides the
                # worker-0 kill; job 6's frame is dropped on the wire
                # and survives through reconnect + keyed replay.
                for i in range(6):
                    ticket = await client.submit(features[i % n])
                    await consume(await ticket.result())
                # Phase B: 8 concurrent submits on the surviving shard.
                tickets = []
                for i in range(6, 14):
                    tickets.append(await client.submit(features[i % n]))
                for ticket in tickets:
                    await consume(await ticket.result())
                # Phase C: 6 streaming sessions, explicit finish.
                for i in range(14, 20):
                    feats = features[i % n]
                    stream = await client.open_stream()
                    for start in range(0, feats.shape[0], 30):
                        await stream.send_frames(feats[start : start + 30])
                    await consume(await stream.result())
                # Phase D: 4 more submits -> 24 mixed jobs total.
                for i in range(20, 24):
                    ticket = await client.submit(features[i % n])
                    await consume(await ticket.result())
                # Sentinel 1 rides dispatch 26: the last shard dies
                # holding it -> typed ERROR (no survivors left).
                sentinel = await (await client.submit(features[0])).result()
                record["sentinel"] = sentinel.status.value
                # Sentinel 2: a dead fleet refuses typed, never hangs.
                with pytest.raises(WireProtocolError, match="workers"):
                    await client.submit(features[0])
                snapshot = await client.metrics()
                record["metrics"] = {
                    key: snapshot[key]
                    for key in (
                        "submitted",
                        "completed",
                        "errors",
                        "timeouts",
                        "cancelled",
                        "retries",
                        "reconnects",
                        "faults_injected",
                    )
                }
                record["stalled"] = snapshot["workers"][1]["stalled_steps"]
                record["client"] = (client.retries, client.reconnects)
                # The flight recorder saw the whole story: each shard
                # death dumped a timeline containing the injected kill
                # and the doomed job's dispatch.
                deaths = [
                    i for i in server.incidents() if i.reason == "worker_death"
                ]
                for dump in deaths:
                    kinds = {e["kind"] for e in dump.events}
                    assert {"dispatch", "fault", "worker_death"} <= kinds
                record["incidents"] = sorted(
                    i.reason for i in server.incidents()
                )
                await client.close()
        return record

    def test_chaos_run_is_typed_bit_identical_and_deterministic(
        self, recognizer, workload
    ):
        features, baselines = workload
        n = len(features)

        first = asyncio.run(self._run(recognizer, features))

        # Every one of the 24 mixed jobs resolved OK — bit-identical
        # to its fault-free sequential baseline despite two kills, a
        # dropped socket and a stalling shard.
        assert len(first["outcomes"]) == self.JOBS
        for i, (status, words, score) in enumerate(first["outcomes"]):
            base = baselines[i % n]
            assert status == "ok", (i, status)
            assert words == base.words, i
            assert score == base.score, i  # bit-exact across the wire

        # The sentinel that killed the last shard is a typed ERROR.
        assert first["sentinel"] == "error"

        # Zero silent drops: every admitted job is accounted for.
        m = first["metrics"]
        assert m["submitted"] == self.JOBS + 1  # 24 OK + 1 sentinel
        assert m["completed"] == self.JOBS
        assert m["errors"] == 1
        assert m["timeouts"] == 0 and m["cancelled"] == 0
        # The resilience counters saw every injected fault.
        assert m["faults_injected"] == 4
        assert m["retries"] == 1  # job 3, redispatched after the kill
        assert m["reconnects"] == 1  # the client came back once
        assert first["client"] == (1, 1)  # one replay, one re-dial
        assert first["stalled"] > 0  # the slow shard really stalled

        # The flight recorder dumped every non-wire incident: three
        # injected dispatch faults, both shard deaths, and the
        # sentinel's typed ERROR — and nothing else.
        assert first["incidents"] == [
            "error",
            "fault_injected",
            "fault_injected",
            "fault_injected",
            "worker_death",
            "worker_death",
        ]

        # Determinism: the same plan replays to the same outcomes.
        second = asyncio.run(self._run(recognizer, features))
        assert second == first

    def test_seeded_plan_drives_a_wire_fleet_clean(
        self, recognizer, workload
    ):
        """A schedule generated from one RNG seed (kill + slow shard +
        wire delay) over threaded shards: every job still resolves OK
        and bit-identical, and the whole plan demonstrably fired."""
        features, baselines = workload
        n = len(features)
        kwargs = dict(
            num_workers=2, jobs=12, worker_kills=1, slow_shards=1, wire_delays=1
        )
        plan = FaultPlan.seeded(5, **kwargs)
        assert plan.faults == FaultPlan.seeded(5, **kwargs).faults

        async def scenario():
            async with Server(
                recognizer,
                num_workers=2,
                max_lanes=2,
                worker_backlog=2,
                max_queue=32,
                fault_plan=plan,
            ) as server:
                async with WireServer(server) as wire:
                    client = await ServeClient.connect(
                        wire.host, wire.port, retry=FAST_RETRY
                    )
                    tickets = [
                        await client.submit(features[i % n]) for i in range(12)
                    ]
                    results = [await t.result() for t in tickets]
                    for i, result in enumerate(results):
                        base = baselines[i % n]
                        assert result.ok, (i, result)
                        assert result.words == base.words
                        assert result.score == base.score
                    metrics = server.metrics()
                    assert metrics.completed == 12
                    assert metrics.errors == 0
                    # kill (at < 12), slow (at < 6) and wire delay
                    # (at < 24 over hello+accepted+result frames) all
                    # land inside this run's event windows.
                    assert metrics.faults_injected == 3
                    await client.close()

        asyncio.run(scenario())
