"""The async serving front door (`repro.serve`) + its runtime bridge.

Covers, per the PR's acceptance criteria:

* the push-queue :class:`~repro.runtime.serving.ServeLoop` bridge
  (deterministic deadline interleavings via an injected clock);
* wall-clock timing metadata populated by ALL THREE runtimes;
* admission control (typed :class:`AdmissionRejected` load shedding),
  typed deadline timeouts (queued and mid-decode), cancellation;
* streaming sessions (frames + raw audio through the frontend,
  partial-hypothesis callbacks, endpoint auto-finish);
* the headline integration: >= 16 concurrent sessions through a
  2-worker SHARDED (forked) server at ``max_lanes=4`` per engine, in
  reference and blas modes, with per-utterance outputs bit-identical
  (reference) / word-identical within tolerance (blas) to sequential
  decode, deadline-missed sessions resolving to typed timeouts and
  over-capacity submits raising typed rejections.

No pytest-asyncio dependency: async tests run under ``asyncio.run``.
"""

import asyncio
import math
import queue
import threading
import time

import numpy as np
import pytest

from repro.decoder import Recognizer
from repro.decoder.scorer import BLAS_SCORE_ATOL
from repro.runtime.serving import (
    STOP,
    CancelJob,
    DecodeJob,
    JobCancelled,
    JobDone,
    JobTimedOut,
    LoopStats,
    ServeLoop,
    ServeStopped,
)
from repro.serve import AdmissionRejected, ServeStatus, Server, ServerClosed


def make_recognizer(task, mode="reference"):
    return Recognizer.create(
        task.dictionary, task.pool, task.lm, task.tying, mode=mode
    )


@pytest.fixture(scope="module")
def recognizer(task):
    return make_recognizer(task)


@pytest.fixture(scope="module")
def workload(task):
    """16+ ragged utterances (full + truncated variants) and their
    sequential-decode baselines."""
    rec = make_recognizer(task)
    features = []
    for utt in task.corpus.test:
        features.append(utt.features)
        features.append(utt.features[: max(40, utt.features.shape[0] // 2)])
    baselines = [rec.decode(f) for f in features]
    return features, baselines


def run_loop_inline(rec, jobs_and_commands, max_lanes=2, clock=None):
    """Preload the inbox (commands + STOP) and run the loop to drain."""
    inbox = queue.Queue()
    for item in jobs_and_commands:
        inbox.put(item)
    inbox.put(STOP)
    events = []
    kwargs = {} if clock is None else {"clock": clock}
    serve = ServeLoop(rec.as_batch(), max_lanes=max_lanes, **kwargs)
    serve.run(inbox, events.append)
    return events


class FakeClock:
    """One tick per call — deadline interleavings become step counts."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


# ----------------------------------------------------------------------
# ServeLoop: the pull->push bridge, no asyncio involved
# ----------------------------------------------------------------------
class TestServeLoop:
    def test_drains_jobs_with_sequential_parity(self, task, workload):
        features, baselines = workload
        rec = make_recognizer(task)
        jobs = [
            DecodeJob(i, f, enqueued_at=0.0) for i, f in enumerate(features[:6])
        ]
        events = run_loop_inline(rec, jobs, max_lanes=3)
        done = {e.utt_id: e.result for e in events if isinstance(e, JobDone)}
        assert sorted(done) == list(range(6))
        for i, result in done.items():
            assert result.words == baselines[i].words
            assert result.score == baselines[i].score  # bit-identical
            assert result.timing is not None
            assert result.timing.wait_s >= 0.0
        stopped = [e for e in events if isinstance(e, ServeStopped)]
        assert len(stopped) == 1 and stopped[0].error is None
        assert stopped[0].stats.completed == 6

    def test_queued_deadline_is_shed_without_decoding(self, task, workload):
        features, baselines = workload
        rec = make_recognizer(task)
        clock = FakeClock()
        jobs = [
            DecodeJob(0, features[0], enqueued_at=0.0),
            # Deadline already in the past on the first clock read.
            DecodeJob(1, features[1], enqueued_at=0.0, deadline_at=0.5),
        ]
        events = run_loop_inline(rec, jobs, max_lanes=1, clock=clock)
        timeouts = [e for e in events if isinstance(e, JobTimedOut)]
        assert [t.utt_id for t in timeouts] == [1]
        assert timeouts[0].stage == "queued"
        assert timeouts[0].frames_decoded == 0
        done = {e.utt_id: e.result for e in events if isinstance(e, JobDone)}
        assert done[0].words == baselines[0].words

    def test_mid_decode_deadline_early_retires_without_perturbing(
        self, task, workload
    ):
        """The victim is cancelled mid-utterance; the survivor sharing
        the bank must stay bit-identical to its sequential decode."""
        features, baselines = workload
        rec = make_recognizer(task)
        clock = FakeClock()
        survivor, victim = features[0], features[2]  # victim is longer
        assert victim.shape[0] > 40
        jobs = [
            DecodeJob(0, survivor, enqueued_at=0.0),
            # ~one clock tick per loop iteration: expires mid-decode.
            DecodeJob(1, victim, enqueued_at=0.0, deadline_at=40.0),
        ]
        events = run_loop_inline(rec, jobs, max_lanes=2, clock=clock)
        timeouts = [e for e in events if isinstance(e, JobTimedOut)]
        assert [t.utt_id for t in timeouts] == [1]
        assert timeouts[0].stage == "decoding"
        assert 0 < timeouts[0].frames_decoded < victim.shape[0]
        done = {e.utt_id: e.result for e in events if isinstance(e, JobDone)}
        assert list(done) == [0]
        assert done[0].words == baselines[0].words
        assert done[0].score == baselines[0].score  # bit-identical

    def test_freed_lane_is_reused_after_timeout(self, task, workload):
        """A deadline-miss frees its lane for the next waiting job."""
        features, baselines = workload
        rec = make_recognizer(task)
        clock = FakeClock()
        jobs = [
            DecodeJob(0, features[2], enqueued_at=0.0, deadline_at=30.0),
            DecodeJob(1, features[0], enqueued_at=0.0),  # waits for the lane
        ]
        events = run_loop_inline(rec, jobs, max_lanes=1, clock=clock)
        timeouts = [e for e in events if isinstance(e, JobTimedOut)]
        assert [t.utt_id for t in timeouts] == [0]
        done = {e.utt_id: e.result for e in events if isinstance(e, JobDone)}
        assert done[1].words == baselines[0].words
        assert done[1].score == baselines[0].score

    def test_queued_cancel_never_costs_a_lane(self, task, workload):
        features, _ = workload
        rec = make_recognizer(task)
        jobs = [
            DecodeJob(0, features[0], enqueued_at=0.0),
            DecodeJob(1, features[1], enqueued_at=0.0),
            CancelJob(1),
        ]
        events = run_loop_inline(rec, jobs, max_lanes=1)
        cancelled = [e for e in events if isinstance(e, JobCancelled)]
        assert [c.utt_id for c in cancelled] == [1]
        assert cancelled[0].stage == "queued"
        assert [e.utt_id for e in events if isinstance(e, JobDone)] == [0]

    def test_malformed_features_fail_typed(self, task, workload):
        features, baselines = workload
        rec = make_recognizer(task)
        jobs = [
            DecodeJob(0, np.zeros((5, 3)), enqueued_at=0.0),  # wrong dim
            DecodeJob(1, features[0], enqueued_at=0.0),
        ]
        events = run_loop_inline(rec, jobs, max_lanes=1)
        failed = [e for e in events if e.__class__.__name__ == "JobFailed"]
        assert [f.utt_id for f in failed] == [0]
        done = {e.utt_id: e.result for e in events if isinstance(e, JobDone)}
        assert done[1].words == baselines[0].words

    def test_periodic_stats_events(self, task, workload):
        features, _ = workload
        rec = make_recognizer(task)
        jobs = [DecodeJob(i, features[i], enqueued_at=0.0) for i in range(4)]
        events = run_loop_inline(rec, jobs, max_lanes=2)
        stats = [e for e in events if isinstance(e, LoopStats)]
        assert stats, "expected periodic LoopStats"
        assert 0.0 < stats[-1].utilization <= 1.0


# ----------------------------------------------------------------------
# Satellite: timing metadata from all three runtimes
# ----------------------------------------------------------------------
class TestDecodeTiming:
    def test_sequential_decode_stamps_timing(self, recognizer, task):
        result = recognizer.decode(task.corpus.test[0].features)
        assert result.timing is not None
        assert result.timing.wait_s == 0.0  # no queue in front
        assert result.timing.decode_s > 0.0
        assert result.timing.total_s == result.timing.decode_s
        assert result.rtf == result.timing.decode_s / result.audio_seconds

    def test_batch_runtime_stamps_timing(self, recognizer, task):
        feats = [u.features for u in task.corpus.test[:3]]
        batch = recognizer.as_batch().decode_batch(feats)
        for lane in batch:
            assert lane.timing is not None
            assert lane.timing.decode_s > 0.0
            assert lane.timing.wait_s == 0.0  # admitted at step 0

    def test_continuous_runtime_stamps_timing(self, recognizer, task):
        feats = [u.features for u in task.corpus.test[:4]]
        stream = recognizer.as_continuous().decode_stream(feats, max_lanes=2)
        for lane in stream:
            assert lane.timing is not None
            assert lane.timing.decode_s > 0.0
            assert lane.timing.wait_s >= 0.0

    def test_timing_excluded_from_equality(self, recognizer, task):
        f = task.corpus.test[0].features
        a, b = recognizer.decode(f), recognizer.decode(f)
        assert a.timing is not None and b.timing is not None
        assert a.timing != b.timing  # different wall clocks...
        assert a == b  # ...same decode


# ----------------------------------------------------------------------
# Server: admission control, deadlines, cancellation, metrics
# ----------------------------------------------------------------------
class TestServer:
    def test_submit_parity_and_metrics(self, recognizer, workload):
        features, baselines = workload

        async def scenario():
            async with Server(
                recognizer, num_workers=1, max_lanes=4, max_queue=64
            ) as server:
                sessions = [server.submit(f) for f in features[:8]]
                results = [await s.result() for s in sessions]
                for result, base in zip(results, baselines):
                    assert result.status is ServeStatus.OK
                    assert result.words == base.words
                    assert result.result.score == base.score
                    assert result.result.timing.wait_s >= 0.0
                metrics = server.metrics()
                assert metrics.submitted == 8
                assert metrics.completed == 8
                assert metrics.queue_depth == 0 and metrics.in_flight == 0
                assert metrics.latency_p95_s >= metrics.latency_p50_s > 0.0
                assert metrics.rtf > 0.0
                assert 0.0 < metrics.lane_utilization <= 1.0

        asyncio.run(scenario())

    def test_admission_rejection_is_typed_and_counted(
        self, recognizer, workload
    ):
        features, _ = workload

        async def scenario():
            async with Server(
                recognizer,
                num_workers=1,
                max_lanes=1,
                worker_backlog=0,
                max_queue=1,
            ) as server:
                first = server.submit(features[0])  # dispatched
                second = server.submit(features[1])  # queued (depth 1)
                with pytest.raises(AdmissionRejected) as err:
                    server.submit(features[2])  # over capacity
                assert err.value.queue_depth == 1
                assert err.value.max_queue == 1
                assert (await first.result()).ok
                assert (await second.result()).ok
                assert server.metrics().rejections == 1

        asyncio.run(scenario())

    def test_deadline_miss_resolves_typed_timeout(self, recognizer, workload):
        features, baselines = workload

        async def scenario():
            async with Server(
                recognizer, num_workers=1, max_lanes=2
            ) as server:
                doomed = server.submit(features[0], deadline_s=0.0)
                fine = server.submit(features[1])
                timeout = await doomed.result()
                assert timeout.status is ServeStatus.TIMEOUT
                assert timeout.result is None
                ok = await fine.result()
                assert ok.ok and ok.words == baselines[1].words
                assert server.metrics().timeouts == 1

        asyncio.run(scenario())

    def test_cancel_resolves_typed_cancellation(self, recognizer, workload):
        features, _ = workload

        async def scenario():
            async with Server(
                recognizer, num_workers=1, max_lanes=1, worker_backlog=0
            ) as server:
                running = server.submit(features[1])
                queued = server.submit(features[0])
                assert queued.cancel()
                result = await queued.result()
                assert result.status is ServeStatus.CANCELLED
                assert (await running.result()).ok
                assert not queued.cancel()  # already resolved

        asyncio.run(scenario())

    def test_submit_validation_and_closed_server(self, recognizer, workload):
        features, _ = workload

        async def scenario():
            server = Server(recognizer)
            with pytest.raises(ServerClosed):
                server.submit(features[0])
            async with server:
                with pytest.raises(ValueError):
                    server.submit(np.zeros((0, recognizer.pool.dim)))
                with pytest.raises(ValueError):
                    server.submit(np.zeros((5, 2)))
            with pytest.raises(ServerClosed):
                server.submit(features[0])

        asyncio.run(scenario())

    def test_submit_refused_when_all_workers_died(self, recognizer, workload):
        """A dead fleet must refuse jobs, not hand out futures that
        can never resolve."""
        features, _ = workload

        async def scenario():
            async with Server(recognizer, num_workers=1) as server:
                # Simulate the worker dying out from under the server.
                server._workers[0].request_stop()
                for _ in range(200):
                    if not server._worker_alive[0]:
                        break
                    await asyncio.sleep(0.01)
                assert not server._worker_alive[0]
                with pytest.raises(ServerClosed):
                    server.submit(features[0])

        asyncio.run(scenario())

    def test_default_deadline_applies(self, recognizer, workload):
        features, _ = workload

        async def scenario():
            async with Server(
                recognizer, num_workers=1, max_lanes=1, default_deadline_s=0.0
            ) as server:
                result = await server.submit(features[0]).result()
                assert result.status is ServeStatus.TIMEOUT
                # An explicit deadline overrides the default.
                result = await server.submit(
                    features[0], deadline_s=30.0
                ).result()
                assert result.ok

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Streaming sessions: frames, audio chunks, partials, endpointing
# ----------------------------------------------------------------------
class TestStreamSession:
    def test_frame_streaming_matches_sequential(self, recognizer, workload):
        features, baselines = workload

        async def scenario():
            async with Server(recognizer, num_workers=1, max_lanes=2) as server:
                session = server.open_session()
                feats = features[0]
                for start in range(0, feats.shape[0], 25):
                    session.send_frames(feats[start : start + 25])
                result = await session.result()
                assert result.ok
                assert result.words == baselines[0].words
                assert result.result.score == baselines[0].score

        asyncio.run(scenario())

    def test_partials_and_endpoint_auto_finish(self, task, recognizer):
        utt = task.corpus.test[0]
        sil = task.pool.means[task.tying.ci_senone("SIL", 0), 0]
        feats = np.vstack([utt.features, np.tile(sil, (60, 1))])
        partials = []

        async def scenario():
            async with Server(recognizer, num_workers=1, max_lanes=2) as server:
                session = server.open_session(
                    on_partial=lambda words, frame: partials.append(words),
                    partial_interval=15,
                    endpoint_silence_frames=25,
                )
                finished = False
                for frame in feats:
                    if session.send_frames(frame):
                        finished = True
                        break
                assert finished, "endpoint never auto-finished the session"
                assert session.endpointed
                result = await session.result()
                assert result.ok
                assert result.words == tuple(utt.words)

        asyncio.run(scenario())
        assert partials, "expected partial-hypothesis callbacks"

    def test_endpointing_without_partials(self, task, recognizer):
        """`endpointing=True` runs the endpointer (and auto-finish)
        even when no partial callback is wanted."""
        utt = task.corpus.test[0]
        sil = task.pool.means[task.tying.ci_senone("SIL", 0), 0]
        feats = np.vstack([utt.features, np.tile(sil, (60, 1))])

        async def scenario():
            async with Server(recognizer, num_workers=1, max_lanes=2) as server:
                session = server.open_session(
                    endpointing=True, endpoint_silence_frames=25
                )
                finished = session.send_frames(feats)
                assert finished and session.endpointed
                result = await session.result()
                assert result.ok and result.words == tuple(utt.words)

        asyncio.run(scenario())

    def test_reused_frame_buffer_is_copied(self, recognizer, workload):
        """A client refilling ONE buffer per tick must not alias every
        stored frame to its last value."""
        features, baselines = workload

        async def scenario():
            async with Server(recognizer, num_workers=1, max_lanes=2) as server:
                session = server.open_session()
                buffer = np.empty(features[0].shape[1])
                for frame in features[0]:
                    buffer[:] = frame  # canonical mic-loop reuse
                    session.send_frames(buffer)
                result = await session.result()
                assert result.ok
                assert result.words == baselines[0].words
                assert result.result.score == baselines[0].score

        asyncio.run(scenario())

    def test_post_endpoint_frames_are_kept_as_leftover(self, task, recognizer):
        """Frames arriving in the same block after the endpoint belong
        to the next utterance — preserved, not silently dropped."""
        utt = task.corpus.test[0]
        sil = task.pool.means[task.tying.ci_senone("SIL", 0), 0]
        next_opening = np.tile(np.arange(sil.size, dtype=np.float64), (7, 1))
        feats = np.vstack([utt.features, np.tile(sil, (60, 1)), next_opening])

        async def scenario():
            async with Server(recognizer, num_workers=1, max_lanes=2) as server:
                session = server.open_session(
                    on_partial=lambda words, frame: None,
                    endpoint_silence_frames=25,
                )
                finished = session.send_frames(feats)  # one big block
                assert finished and session.endpointed
                leftover = session.leftover_frames
                assert leftover is not None and leftover.shape[0] >= 7
                # Everything the client sent is accounted for: decoded
                # frames + leftover == the full block.
                decoded = (await session.result()).result.frames
                assert decoded + leftover.shape[0] == feats.shape[0]
                # The tail end of the leftover is the next utterance's
                # opening block, bit for bit.
                np.testing.assert_array_equal(leftover[-7:], next_opening)

        asyncio.run(scenario())

    def test_frames_after_endpoint_across_calls_become_leftover(
        self, task, recognizer
    ):
        """With auto_finish off, frames sent in LATER calls after the
        endpoint also land in leftover_frames — never in this decode."""
        utt = task.corpus.test[0]
        sil = task.pool.means[task.tying.ci_senone("SIL", 0), 0]
        feats = np.vstack([utt.features, np.tile(sil, (60, 1))])

        async def scenario():
            async with Server(recognizer, num_workers=1, max_lanes=2) as server:
                session = server.open_session(
                    on_partial=lambda words, frame: None,
                    endpoint_silence_frames=25,
                    auto_finish=False,
                )
                for frame in feats:
                    session.send_frames(frame)
                    if session.endpointed:
                        break
                assert session.endpointed and not session.finished
                decoded_frames = len(session._frames)
                next_opening = task.corpus.test[1].features[:5]
                for frame in next_opening:  # next utterance starts
                    session.send_frames(frame)
                leftover = session.leftover_frames
                assert leftover is not None and leftover.shape[0] == 5
                np.testing.assert_array_equal(leftover, next_opening)
                result = await session.result()
                assert result.ok
                assert result.result.frames == decoded_frames  # not 5 more

        asyncio.run(scenario())

    def test_audio_chunks_match_one_shot_extraction(self, task, recognizer):
        from repro.frontend import Frontend, StreamingAudioBuffer

        rng = np.random.default_rng(5)
        waveform = rng.normal(size=16000)
        frontend = Frontend()
        buffered = StreamingAudioBuffer(frontend)
        for start in range(0, waveform.size, 1234):
            buffered.append(waveform[start : start + 1234])
        assert buffered.num_samples == waveform.size
        assert buffered.num_frames == frontend.num_frames(waveform.size)
        np.testing.assert_array_equal(
            buffered.extract(), frontend.extract(waveform)
        )

    def test_empty_and_mixed_sessions_rejected(self, recognizer, workload):
        features, _ = workload

        async def scenario():
            async with Server(recognizer, num_workers=1) as server:
                with pytest.raises(ValueError):
                    server.open_session().finish()
                session = server.open_session()
                session.send_frames(features[0][0])
                with pytest.raises(RuntimeError):
                    session.send_audio(np.zeros(100))

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# THE acceptance test: 2-worker sharded server, >= 16 concurrent
# sessions, max_lanes=4 per engine, reference + blas
# ----------------------------------------------------------------------
class TestShardedServerIntegration:
    @pytest.mark.parametrize("mode", ["reference", "blas"])
    def test_sharded_parity_deadlines_and_shedding(self, task, mode):
        rec = make_recognizer(task, mode=mode)
        features = []
        for utt in task.corpus.test:
            features.append(utt.features)
            features.append(utt.features[: max(40, utt.features.shape[0] // 2)])
        assert len(features) >= 16
        baselines = [rec.decode(f) for f in features]

        async def scenario():
            async with Server(
                rec,
                num_workers=2,
                max_lanes=4,
                max_queue=4,
                use_processes=True,  # forked shards over the shared pool
            ) as server:
                # All submits land before the loop yields, so dispatch
                # is deterministic: 2 workers x (4 lanes + 4 backlog)
                # = 16 in flight, then 4 queued, and every further
                # submit is shed with a typed rejection.
                sessions, rejections = [], 0
                for f in features + features[:8]:
                    try:
                        sessions.append(server.submit(f))
                    except AdmissionRejected as err:
                        rejections += 1
                        assert err.max_queue == 4
                        assert err.queue_depth == 4
                assert len(sessions) == 20
                assert rejections == 4
                assert server.metrics().rejections == rejections

                results = await asyncio.gather(
                    *[s.result() for s in sessions]
                )
                used_workers = set()
                for i, result in enumerate(results):
                    base = baselines[i % len(features)]
                    assert result.status is ServeStatus.OK
                    used_workers.add(result.worker)
                    if mode == "blas":
                        assert result.words == base.words
                        assert (
                            abs(result.result.score - base.score)
                            <= BLAS_SCORE_ATOL
                        )
                    else:
                        assert result.words == base.words
                        assert result.result.score == base.score  # bit-exact
                assert used_workers == {0, 1}  # both shards decoded

                # Deadline-missed sessions resolve to typed timeouts
                # (deadline 0 = already expired at enqueue) without
                # disturbing a healthy neighbour submitted after them.
                doomed = [
                    server.submit(f, deadline_s=0.0) for f in features[:3]
                ]
                healthy = server.submit(features[0])
                for session in doomed:
                    result = await session.result()
                    assert result.status is ServeStatus.TIMEOUT
                    assert result.result is None
                survivor = await healthy.result()
                assert survivor.ok
                assert survivor.words == baselines[0].words

                metrics = server.metrics()
                assert metrics.completed == 21
                assert metrics.timeouts == 3
                assert len(metrics.workers) == 2
                assert metrics.latency_p95_s > 0.0

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Admission policy: EDF ordering, fair-share quotas, shed-wait
# percentiles, backlog autotuning
# ----------------------------------------------------------------------
class TestAdmissionPolicy:
    def test_edf_queue_orders_by_deadline_then_arrival(self):
        from types import SimpleNamespace

        from repro.serve.server import _EdfQueue

        q = _EdfQueue()
        jobs = [
            DecodeJob(0, np.zeros((1, 2)), 0.0, deadline_at=None),
            DecodeJob(1, np.zeros((1, 2)), 0.0, deadline_at=10.0),
            DecodeJob(2, np.zeros((1, 2)), 0.0, deadline_at=1.0),
            DecodeJob(3, np.zeros((1, 2)), 0.0, deadline_at=None),
        ]
        for i, job in enumerate(jobs):
            q.push(job, SimpleNamespace(client="a" if i % 2 else "b"))
        # Tightest deadline first; deadline-free jobs last, FIFO.
        assert [q.pop()[0].utt_id for _ in range(len(q))] == [2, 1, 0, 3]
        assert q.pop() is None and len(q) == 0

    def test_edf_queue_remove_and_client_accounting(self):
        from types import SimpleNamespace

        from repro.serve.server import _EdfQueue

        q = _EdfQueue()
        for i in range(4):
            q.push(
                DecodeJob(i, np.zeros((1, 2)), 0.0, deadline_at=float(i)),
                SimpleNamespace(client="a" if i < 3 else "b"),
            )
        assert q.queued_for("a") == 3 and q.queued_for("b") == 1
        assert q.active_clients() == 2
        assert q.remove(1) and not q.remove(1)  # tombstoned once
        assert q.queued_for("a") == 2
        assert [q.pop()[0].utt_id for _ in range(len(q))] == [0, 2, 3]
        assert q.active_clients() == 0

    def test_dispatch_follows_deadline_order_not_fifo(
        self, recognizer, workload
    ):
        """Jobs queued behind a busy worker dispatch earliest-deadline
        first: submit order A(10s) B(1s) C(none), completion order
        B, A, C."""
        features, _ = workload

        async def scenario():
            async with Server(
                recognizer,
                num_workers=1,
                max_lanes=1,
                worker_backlog=0,
                max_queue=8,
            ) as server:
                blocker = server.submit(features[0])  # occupies the lane
                a = server.submit(features[1], deadline_s=10.0)
                b = server.submit(features[1], deadline_s=1.0)
                c = server.submit(features[1])
                results = {
                    name: await s.result()
                    for name, s in [("a", a), ("b", b), ("c", c)]
                }
                assert (await blocker.result()).ok
                for name, result in results.items():
                    assert result.ok, f"{name}: {result}"
                assert (
                    results["b"].finished_at
                    < results["a"].finished_at
                    < results["c"].finished_at
                )

        asyncio.run(scenario())

    def test_client_quota_rejection_is_typed(self, recognizer, workload):
        """With two clients contending, each is capped at its fair
        share of the queue — the over-quota client gets a typed
        ``client_quota`` rejection while the other still has room."""
        features, _ = workload

        async def scenario():
            async with Server(
                recognizer,
                num_workers=1,
                max_lanes=1,
                worker_backlog=0,
                max_queue=4,
            ) as server:
                blocker = server.submit(features[0], client="a")
                queued = [
                    server.submit(features[1], client="a"),
                    server.submit(features[1], client="a"),
                    server.submit(features[1], client="b"),
                ]
                # Two active clients -> fair share is 4 // 2 = 2 each.
                with pytest.raises(AdmissionRejected) as err:
                    server.submit(features[1], client="a")
                assert err.value.reason == "client_quota"
                assert err.value.client == "a"
                assert err.value.max_queue == 4
                # "b" is under its share; the queue itself has room.
                queued.append(server.submit(features[1], client="b"))
                for session in [blocker, *queued]:
                    assert (await session.result()).ok
                assert server.metrics().rejections == 1

        asyncio.run(scenario())

    def test_wait_percentiles_include_shed_traffic(
        self, recognizer, workload
    ):
        """Queue-saturation metrics must not be survivorship-biased:
        jobs shed at their deadline contribute their full queue wait
        to wait_p95, so overload shows up where it hurt."""
        features, _ = workload

        async def scenario():
            async with Server(
                recognizer, num_workers=1, max_lanes=2, max_queue=16
            ) as server:
                survivors = [server.submit(features[0]) for _ in range(3)]
                for s in survivors:
                    assert (await s.result()).ok
                # Survivor waits are tiny on an idle server; the shed
                # series is EMPTY, and an empty series has no
                # percentile — NaN, not a flattering 0.0.
                healthy = server.metrics()
                assert healthy.wait_p95_s < 0.2
                assert math.isnan(healthy.shed_wait_p95_s)

                # Jobs that (by injected enqueue stamp) sat queued for
                # ~0.5s before their deadline passed: all shed, typed.
                now = time.monotonic()
                doomed = [
                    server.submit(
                        features[1],
                        enqueued_at=now - 0.5,
                        deadline_s=0.25,
                    )
                    for _ in range(4)
                ]
                for s in doomed:
                    result = await s.result()
                    assert result.status is ServeStatus.TIMEOUT
                    assert "shed before dispatch" in result.detail

                saturated = server.metrics()
                assert saturated.timeouts == 4
                assert saturated.shed_wait_p95_s >= 0.4
                # The combined percentile now reflects the shed jobs'
                # waits, which survivors alone would have hidden.
                assert saturated.wait_p95_s >= 0.4
                assert saturated.wait_p95_s > healthy.wait_p95_s

        asyncio.run(scenario())

    def test_autotune_halves_on_misses_and_grows_when_packed(
        self, recognizer
    ):
        """Unit-step the backlog autotuner: misses in the window halve
        the depth; a packed-and-healthy fleet with queued work grows
        it by one, up to the cap."""
        from types import SimpleNamespace

        server = Server(
            recognizer, num_workers=1, max_lanes=2, worker_backlog="auto"
        )
        assert server._autotune and server._backlog == 2

        # Window with a timeout: depth halves.
        server._timeouts = 1
        server._autotune_tick()
        assert server._backlog == 1

        # Quiet window, fleet not packed: unchanged.
        server._workers = [object()]
        server._worker_alive = [True]
        server._in_flight = [0]
        server._autotune_tick()
        assert server._backlog == 1

        # Packed and healthy with queued work: grows by one per window.
        server._pending.push(
            DecodeJob(0, np.zeros((1, 2)), 0.0, None),
            SimpleNamespace(client=None),
        )
        for expected in (2, 3, 4, 5, 6, 7, 8):
            server._in_flight = [server._capacity]
            server._autotune_tick()
            assert server._backlog == expected
        # Capped at 4 * max_lanes.
        server._in_flight = [server._capacity]
        server._autotune_tick()
        assert server._backlog == 8 == server._backlog_max

        # A rejection in the window halves it again.
        server._rejections = 3
        server._autotune_tick()
        assert server._backlog == 4


# ----------------------------------------------------------------------
# Fleet behaviour: work stealing between skewed shards, worker-death
# re-dispatch to survivors
# ----------------------------------------------------------------------
class TestFleetResilience:
    def test_work_stealing_rebalances_skewed_shards(self, task, workload):
        """One shard drains its short jobs while the other sits on a
        backlog of long ones: the server steals the waiting jobs back
        and re-runs them on the idle shard, bit-identically."""
        features, baselines = workload
        rec = make_recognizer(task)
        short = features[1][:40]
        short_base = rec.decode(short)

        async def scenario():
            async with Server(
                rec,
                num_workers=2,
                max_lanes=1,
                worker_backlog=2,
                max_queue=16,
            ) as server:
                # Alternating submit + least-loaded dispatch gives
                # worker 0 the shorts and worker 1 the longs.
                sessions = []
                for i in range(6):
                    f = short if i % 2 == 0 else features[0]
                    sessions.append(server.submit(f))
                results = await asyncio.gather(
                    *[s.result() for s in sessions]
                )
                for i, result in enumerate(results):
                    base = short_base if i % 2 == 0 else baselines[0]
                    assert result.ok, result
                    assert result.words == base.words
                    assert result.result.score == base.score  # bit-exact
                metrics = server.metrics()
                assert metrics.steals >= 1
                # A stolen job ran on the shard that stole it.
                assert {r.worker for r in results} == {0, 1}

        asyncio.run(scenario())

    def test_worker_death_redispatches_queued_jobs(self, task, workload):
        """SIGKILL one of two forked shards mid-burst: the sweeper
        notices the silent death and every job it held (in lanes or
        backlog) re-runs on the survivor — same words, same scores,
        no silent drops."""
        features, baselines = workload
        rec = make_recognizer(task)

        async def scenario():
            async with Server(
                rec,
                num_workers=2,
                max_lanes=1,
                worker_backlog=2,
                max_queue=16,
                use_processes=True,
            ) as server:
                sessions = [server.submit(features[0]) for _ in range(6)]
                # Both shards hold dispatched jobs.
                assert server._in_flight[0] > 0 and server._in_flight[1] > 0
                server._workers[0]._proc.kill()  # no goodbye event
                results = await asyncio.gather(
                    *[s.result() for s in sessions]
                )
                for result in results:
                    assert result.status is ServeStatus.OK, result
                    assert result.words == baselines[0].words
                    assert result.result.score == baselines[0].score
                    assert result.worker == 1  # survivor decoded it...
                # ...including jobs first dispatched to the dead shard.
                assert not server._worker_alive[0]
                assert server.metrics().errors == 0

        asyncio.run(scenario())

    def test_worker_death_during_streaming_session(self, task, workload):
        """The shard holding a finished streaming session's decode is
        SIGKILLed: the job re-runs on the survivor and the streamed
        utterance still comes back OK and bit-identical."""
        features, baselines = workload
        rec = make_recognizer(task)

        async def scenario():
            async with Server(
                rec,
                num_workers=2,
                max_lanes=1,
                worker_backlog=2,
                max_queue=16,
                use_processes=True,
            ) as server:
                stream = server.open_session()
                feats = features[0]
                for start in range(0, feats.shape[0], 30):
                    stream.send_frames(feats[start : start + 30])
                session = stream.finish()
                victim = session.worker
                assert victim is not None
                server._workers[victim]._proc.kill()
                result = await session.result()
                assert result.status is ServeStatus.OK, result
                assert result.words == baselines[0].words
                assert result.result.score == baselines[0].score
                assert result.worker == 1 - victim
                assert server.metrics().retries >= 1

        asyncio.run(scenario())

    def test_cancel_racing_worker_death_resolves_exactly_once(
        self, task, workload
    ):
        """cancel() lands on a job whose shard was just SIGKILLed —
        the cancel confirmation died with the worker, and the
        redispatch machinery re-homes the job anyway.  The session
        must resolve exactly once, typed, never hang: every submitted
        job is accounted for in the outcome counters."""
        features, baselines = workload
        rec = make_recognizer(task)

        async def scenario():
            async with Server(
                rec,
                num_workers=2,
                max_lanes=1,
                worker_backlog=2,
                max_queue=16,
                use_processes=True,
            ) as server:
                sessions = [server.submit(features[0]) for _ in range(4)]
                victim = sessions[0].worker
                assert victim is not None
                # Kill, then cancel, with no awaits in between: the
                # CancelJob goes to a corpse and can never confirm.
                server._workers[victim]._proc.kill()
                assert sessions[0].cancel()
                results = await asyncio.gather(
                    *[s.result() for s in sessions]
                )
                for result in results:
                    assert result.status is ServeStatus.OK, result
                    assert result.words == baselines[0].words
                    assert result.result.score == baselines[0].score
                metrics = server.metrics()
                # Exactly one typed outcome per job, nothing dropped.
                assert (
                    metrics.completed + metrics.cancelled + metrics.errors
                    == 4
                )
                # Both of the dead shard's jobs burned their one retry.
                assert metrics.retries == 2

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# submit_audio featurizes off the event loop
# ----------------------------------------------------------------------
class TestSubmitAudioOffLoop:
    def test_large_submit_audio_does_not_stall_loop(self, recognizer):
        """A big MFCC pass must run in the executor: while one client's
        waveform is featurized, the event loop keeps ticking (serving
        other sessions' partials, dispatch, deadline sweeps)."""
        rng = np.random.default_rng(11)
        waveform = rng.normal(size=16000 * 60)  # ~a minute of audio

        async def scenario():
            async with Server(recognizer, num_workers=1, max_lanes=2) as server:
                ticks = 0

                async def heartbeat():
                    nonlocal ticks
                    while True:
                        await asyncio.sleep(0.001)
                        ticks += 1

                beat = asyncio.get_running_loop().create_task(heartbeat())
                await asyncio.sleep(0.01)
                ticks = 0
                # Expired deadline: featurization cost is what we're
                # measuring; the decode itself is shed at dispatch.
                session = await server.submit_audio(
                    waveform, deadline_s=0.0
                )
                ticks_during = ticks
                beat.cancel()
                assert (
                    await session.result()
                ).status is ServeStatus.TIMEOUT
                # The loop ran concurrently with feature extraction.
                assert ticks_during >= 2, (
                    f"event loop stalled during submit_audio "
                    f"({ticks_during} heartbeats)"
                )

        asyncio.run(scenario())
