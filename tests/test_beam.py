"""Tests for repro.decoder.beam."""

import numpy as np
import pytest

from repro.decoder.beam import LOG_ZERO, BeamConfig, apply_beam


class TestBeamConfig:
    def test_rejects_nonpositive_beams(self):
        with pytest.raises(ValueError):
            BeamConfig(state_beam=0)
        with pytest.raises(ValueError):
            BeamConfig(word_beam=-1)
        with pytest.raises(ValueError):
            BeamConfig(max_active_states=-1)


class TestApplyBeam:
    def test_prunes_outside_beam(self):
        delta = np.array([0.0, -50.0, -300.0])
        alive, count = apply_beam(delta, BeamConfig(state_beam=100.0))
        assert count == 2
        assert delta[2] == LOG_ZERO
        assert alive.tolist() == [True, True, False]

    def test_all_dead_input(self):
        delta = np.full(5, LOG_ZERO)
        alive, count = apply_beam(delta, BeamConfig())
        assert count == 0
        assert not alive.any()

    def test_histogram_cap(self):
        delta = -np.arange(10, dtype=float)
        alive, count = apply_beam(
            delta, BeamConfig(state_beam=1000.0, max_active_states=3)
        )
        assert count == 3
        assert alive[:3].all() and not alive[3:].any()

    def test_histogram_cap_with_ties(self):
        delta = np.zeros(10)
        _, count = apply_beam(
            delta, BeamConfig(state_beam=1000.0, max_active_states=4)
        )
        assert count == 4

    def test_zero_cap_disables_histogram(self):
        delta = -np.arange(100, dtype=float)
        _, count = apply_beam(
            delta, BeamConfig(state_beam=1000.0, max_active_states=0)
        )
        assert count == 100

    def test_best_state_always_survives(self, rng):
        delta = rng.normal(-100, 30, size=50)
        best = delta.argmax()
        alive, _ = apply_beam(delta, BeamConfig(state_beam=1.0))
        assert alive[best]

    def test_modifies_in_place(self):
        delta = np.array([0.0, -500.0])
        apply_beam(delta, BeamConfig(state_beam=100.0))
        assert delta[1] == LOG_ZERO
