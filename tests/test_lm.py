"""Tests for repro.lm — vocabulary and back-off n-gram model."""

import numpy as np
import pytest

from repro.lm.ngram import NGramModel
from repro.lm.vocabulary import BOS, EOS, UNK, Vocabulary


@pytest.fixture()
def vocab():
    return Vocabulary(["the", "cat", "dog", "runs", "sleeps"])


@pytest.fixture()
def bigram(vocab):
    lm = NGramModel(vocab, order=2)
    lm.train(
        [
            ["the", "cat", "runs"],
            ["the", "dog", "runs"],
            ["the", "cat", "sleeps"],
            ["the", "dog", "sleeps"],
            ["the", "cat", "runs"],
        ]
    )
    return lm


class TestVocabulary:
    def test_sorted_ids(self, vocab):
        assert vocab.words() == ("cat", "dog", "runs", "sleeps", "the")
        assert vocab.word_id("cat") == 0

    def test_pseudo_words_above_regular(self, vocab):
        assert vocab.bos_id == vocab.size
        assert vocab.eos_id == vocab.size + 1
        assert vocab.unk_id == vocab.size + 2
        assert len(vocab) == vocab.size + 3

    def test_unknown_maps_to_unk(self, vocab):
        assert vocab.word_id("zebra") == vocab.unk_id

    def test_word_lookup_roundtrip(self, vocab):
        for w in vocab.words():
            assert vocab.word(vocab.word_id(w)) == w
        assert vocab.word(vocab.bos_id) == BOS
        assert vocab.word(vocab.eos_id) == EOS
        assert vocab.word(vocab.unk_id) == UNK

    def test_out_of_range(self, vocab):
        with pytest.raises(IndexError):
            vocab.word(999)

    def test_reserved_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary(["<s>", "x"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary([])

    def test_encode(self, vocab):
        ids = vocab.encode(["the", "cat"])
        assert ids[0] == vocab.bos_id and ids[-1] == vocab.eos_id
        assert len(ids) == 4

    def test_duplicates_collapsed(self):
        v = Vocabulary(["a", "a", "b"])
        assert v.size == 2


class TestNGramModel:
    def test_requires_training(self, vocab):
        lm = NGramModel(vocab, order=2)
        with pytest.raises(RuntimeError):
            lm.prob(0)

    def test_order_bounds(self, vocab):
        with pytest.raises(ValueError):
            NGramModel(vocab, order=0)
        with pytest.raises(ValueError):
            NGramModel(vocab, order=4)

    def test_probabilities_positive(self, bigram, vocab):
        for w in range(vocab.size):
            assert bigram.prob(w) > 0

    def test_full_distribution_sums_to_one(self, bigram, vocab):
        """P(. | h) over the full ID space must be a distribution."""
        for history in [(), (vocab.word_id("the"),), (vocab.bos_id,)]:
            total = sum(
                bigram.prob(w, history) for w in range(len(vocab))
            )
            assert total == pytest.approx(1.0, abs=1e-9)

    def test_seen_bigram_beats_unseen(self, bigram, vocab):
        the = vocab.word_id("the")
        assert bigram.prob(vocab.word_id("cat"), (the,)) > bigram.prob(
            vocab.word_id("runs"), (the,)
        )

    def test_row_matches_scalar(self, bigram, vocab):
        history = (vocab.word_id("cat"),)
        row = bigram.log_prob_row(history)
        for w in range(vocab.size):
            assert row[w] == pytest.approx(bigram.log_prob(w, history))

    def test_eos_probability(self, bigram, vocab):
        # "runs" and "sleeps" always end sentences.
        assert bigram.eos_log_prob((vocab.word_id("runs"),)) > bigram.eos_log_prob(
            (vocab.word_id("the"),)
        )

    def test_sentence_log_prob_negative(self, bigram):
        assert bigram.sentence_log_prob(["the", "cat", "runs"]) < 0

    def test_perplexity_sane(self, bigram):
        ppl = bigram.perplexity([["the", "cat", "runs"]])
        assert 1.0 < ppl < len(bigram.vocabulary)

    def test_bigram_beats_unigram_perplexity(self, vocab):
        text = [
            ["the", "cat", "runs"],
            ["the", "dog", "sleeps"],
            ["the", "cat", "sleeps"],
        ] * 3
        uni = NGramModel(vocab, order=1)
        uni.train(text)
        bi = NGramModel(vocab, order=2)
        bi.train(text)
        assert bi.perplexity(text) < uni.perplexity(text)

    def test_trigram_backoff(self, vocab):
        tri = NGramModel(vocab, order=3)
        tri.train([["the", "cat", "runs"], ["the", "dog", "runs"]])
        history = (vocab.word_id("the"), vocab.word_id("cat"))
        assert tri.prob(vocab.word_id("runs"), history) > 0.3

    def test_history_truncated_to_order(self, bigram, vocab):
        long_history = (vocab.word_id("dog"), vocab.word_id("cat"))
        short = bigram.prob(vocab.word_id("runs"), (vocab.word_id("cat"),))
        assert bigram.prob(vocab.word_id("runs"), long_history) == pytest.approx(short)

    def test_sampling_generates_known_words(self, bigram, vocab):
        rng = np.random.default_rng(0)
        for _ in range(5):
            sentence = bigram.sample_sentence(rng, max_words=6)
            assert all(w in vocab.words() for w in sentence)

    def test_sampling_respects_min_words(self, bigram):
        rng = np.random.default_rng(1)
        for _ in range(5):
            assert len(bigram.sample_sentence(rng, min_words=2, max_words=8)) >= 2

    def test_ngram_counts_and_storage(self, bigram):
        counts = bigram.num_ngrams()
        assert counts[1] > 0 and counts[2] > 0
        assert bigram.storage_bytes() == sum(counts.values()) * 8

    def test_empty_training_rejected(self, vocab):
        with pytest.raises(ValueError):
            NGramModel(vocab).train([])

    def test_row_cache_eviction(self, bigram, vocab):
        bigram._row_cache_limit = 2
        bigram.log_prob_row(())
        bigram.log_prob_row((0,))
        bigram.log_prob_row((1,))
        assert len(bigram._row_cache) <= 2
